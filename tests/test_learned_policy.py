"""Unit tests for the online-policy seam and the two learned policies.

``PrefetchFilterChain.policy`` (reachable as ``node.chain.policy``) is
the one documented stubbing seam for adaptive control: swapping it
redirects *all three* protocol hooks -- ``observe`` at epoch
boundaries, ``decide`` per surviving candidate, ``update`` on prefetch
fates -- because the feedback listeners read the attribute at call
time.  The recording-stub tests pin that contract against a real run;
the rest are direct unit tests of :class:`BanditSelector` /
:class:`PerceptronFilter` arithmetic, plus the SIM lint gate over the
whole ``repro.prefetch.learned`` package.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.config import LearnedConfig, scaled_config
from repro.prefetch.learned import (ACTION_KEEP, BanditSelector,
                                    OnlinePolicy, PerceptronFilter,
                                    PolicyFeatures)
from repro.sim.system import MulticoreSystem

REPO = Path(__file__).resolve().parent.parent


def _features(cycle=0, pf_issued=0, pf_useful=0, pf_dropped=0,
              demand_misses=0, useless_evictions=0, dram_busy_permille=0,
              noc_flit_hops=0, mshr_occupancy_permille=0):
    return PolicyFeatures(cycle, pf_issued, pf_useful, pf_dropped,
                          demand_misses, useless_evictions,
                          dram_busy_permille, noc_flit_hops,
                          mshr_occupancy_permille)


class RecordingPolicy(OnlinePolicy):
    """Admit-all (or deny-all) stub that records every hook invocation."""

    name = "recording"

    def __init__(self, admit: bool = True) -> None:
        self.admit = admit
        self.observed = []
        self.decided = []
        self.updated = []

    def observe(self, features: PolicyFeatures) -> int:
        self.observed.append(features)
        return ACTION_KEEP

    def decide(self, trigger_ip: int, line: int, cycle: int) -> bool:
        self.decided.append((trigger_ip, line, cycle))
        return self.admit

    def update(self, line: int, trigger_ip: int, useful: bool) -> None:
        self.updated.append((line, trigger_ip, useful))


def _stubbed_run(admit: bool):
    """One learned run with every core's policy swapped for a stub."""
    config = scaled_config(num_cores=1, channels=1,
                           sim_instructions=2_500)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="berti")
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name="none")
    config.learned = dataclasses.replace(config.learned,
                                         policy="perceptron",
                                         epoch_accesses=32)
    system = MulticoreSystem(config, ["605.mcf_s-1536B"])
    stub = RecordingPolicy(admit=admit)
    for node in system.nodes:
        node.chain.policy = stub
    return system.run(), stub


class TestPolicySeam:
    def test_stub_sees_all_three_hooks_with_sane_arguments(self):
        result, stub = _stubbed_run(admit=True)
        # The chain drove every hook through the swapped-in stub.
        assert stub.observed, "observe never reached the stub"
        assert stub.decided, "decide never reached the stub"
        assert stub.updated, "update never reached the stub"
        # Feature snapshots are ordered and physically plausible.
        cycles = [f.cycle for f in stub.observed]
        assert cycles == sorted(cycles)
        for features in stub.observed:
            assert 0 <= features.dram_busy_permille <= 1000
            assert 0 <= features.mshr_occupancy_permille <= 1000
        for cumulative in ("pf_issued", "pf_useful", "demand_misses",
                           "useless_evictions", "noc_flit_hops"):
            values = [getattr(f, cumulative) for f in stub.observed]
            assert values == sorted(values), f"{cumulative} not cumulative"
        # decide() sees the privatised line keyspace; every fate the
        # listeners report is for a line the stub itself admitted.
        decided_lines = {line for _ip, line, _cycle in stub.decided}
        updated_lines = {line for line, _ip, _useful in stub.updated}
        assert updated_lines <= decided_lines
        assert result.prefetch.issued > 0

    def test_deny_all_stub_suppresses_all_prefetches(self):
        result, stub = _stubbed_run(admit=False)
        assert stub.decided, "deny-all stub never consulted"
        assert result.prefetch.issued == 0
        # Drops are charged to the chain's filter-drop counter.
        chain = result.counters["core0.chain"]
        assert chain["pf_dropped_filter"] >= len(stub.decided)
        assert not stub.updated, "no admissions, so no fates"


class TestBanditSelector:
    def _selector(self, **overrides) -> BanditSelector:
        config = dataclasses.replace(
            LearnedConfig(policy="bandit"), **overrides)
        return BanditSelector(config, core_id=0)

    def test_warm_up_round_robin_measures_every_arm_once(self):
        selector = self._selector(epsilon_permille=0)
        arms = [selector.observe(_features(cycle=i))
                for i in range(len(selector.arms))]
        assert arms == list(range(len(selector.arms)))

    def test_reward_steers_the_greedy_choice(self):
        selector = self._selector(epsilon_permille=0)
        n = len(selector.arms)
        # Warm-up epochs: only arm 1's epoch produces useful prefetches
        # (arm k runs between observe k+1 and k+2).
        selector.observe(_features(cycle=0))
        for epoch in range(1, n + 1):
            useful = 10 if epoch == 2 else 0
            selector.observe(_features(cycle=epoch, pf_useful=useful))
        assert selector.q[1] > 0
        assert all(q <= 0 for i, q in enumerate(selector.q) if i != 1)
        assert selector.observe(_features(cycle=n + 1)) == 1

    def test_issued_prefetches_cost_under_bus_pressure(self):
        selector = self._selector()
        base = _features(cycle=0)
        idle = _features(cycle=1, pf_issued=100)
        busy = _features(cycle=1, pf_issued=100, dram_busy_permille=1000)
        assert selector._reward(base, idle) == 0
        assert selector._reward(base, busy) < 0

    def test_argmax_ties_break_to_the_lowest_index(self):
        assert BanditSelector._argmax([5, 5, 3]) == 0
        assert BanditSelector._argmax([0, 7, 7]) == 1

    def test_ucb_bonus_prefers_the_less_tried_arm(self):
        selector = self._selector(ucb=True)
        selector.counts = [5, 1, 5, 5]
        selector.q = [0, 0, 0, 0]
        assert selector._choose() == 1

    def test_exploration_stream_is_seeded_per_core(self):
        def draws(seed, core_id):
            selector = BanditSelector(
                dataclasses.replace(LearnedConfig(policy="bandit"),
                                    seed=seed, epsilon_permille=1000),
                core_id)
            return [selector.observe(_features(cycle=i))
                    for i in range(30)]

        assert draws(11, 0) == draws(11, 0)
        assert draws(11, 0) != draws(12, 0)
        assert draws(11, 0) != draws(11, 1)


class TestPerceptronFilter:
    def _filter(self, **overrides) -> PerceptronFilter:
        config = dataclasses.replace(
            LearnedConfig(policy="perceptron"), **overrides)
        return PerceptronFilter(config, core_id=0)

    def test_cold_filter_admits_at_zero_threshold(self):
        policy = self._filter()
        assert policy.decide(0x400, 0x1000, cycle=0) is True
        assert policy.admits == 1 and policy.drops == 0

    def test_useless_fates_train_the_same_candidate_away(self):
        policy = self._filter(probe_interval=1_000_000)
        ip, line = 0x400, 0x1000
        assert policy.decide(ip, line, 0) is True
        policy.update(line, ip, useful=False)
        assert policy.trainings == 1
        assert policy.decide(ip, line, 0) is False
        assert policy.drops == 1

    def test_probe_admissions_keep_sampling_a_strict_filter(self):
        policy = self._filter(probe_interval=3)
        policy.threshold = 100  # nothing clears the bar on merit
        pattern = [policy.decide(0x400, 0x1000 + i, 0) for i in range(9)]
        assert pattern == [False, False, True] * 3
        assert policy.probes == 3

    def test_threshold_tracks_dram_bus_pressure(self):
        policy = self._filter()
        policy.observe(_features(dram_busy_permille=0))
        idle = policy.threshold
        policy.observe(_features(dram_busy_permille=1000))
        assert policy.threshold > idle

    def test_pending_map_is_bounded_and_evicts_oldest(self):
        policy = self._filter(pending_entries=4, probe_interval=1_000_000)
        lines = [0x1000 + i * 65 for i in range(6)]
        for i, line in enumerate(lines):
            policy.decide(0x400 + i * 8, line, 0)
        assert len(policy._pending) == 4
        # The two oldest records were evicted: their fate is a no-op.
        policy.update(lines[0], 0, useful=False)
        policy.update(lines[1], 0, useful=False)
        assert policy.trainings == 0
        policy.update(lines[5], 0, useful=False)
        assert policy.trainings == 1

    def test_weights_saturate_at_the_configured_width(self):
        policy = self._filter(weight_bits=4, probe_interval=1_000_000)
        ip, line = 0x400, 0x1000
        for _ in range(40):
            policy.threshold = -1_000  # keep admitting to keep training
            policy.decide(ip, line, 0)
            policy.update(line, ip, useful=False)
        lowest = min(min(weights) for weights, _salt in policy._lanes)
        assert lowest == -(1 << 3)


def test_learned_package_is_sim_lint_clean():
    """The whole ``repro.prefetch.learned`` package passes the simulator
    determinism lints with *zero* violations and *zero* baseline
    suppressions -- SIM009 (set iteration), SIM010 (random module),
    SIM011 (hash()/id()/wall-clock), SIM012 (float reductions), SIM013
    (setattr/vars) would each break the bit-identical-replay contract
    the policies advertise."""
    from repro.analysis.lint import run_lint

    package = REPO / "src" / "repro" / "prefetch" / "learned"
    report = run_lint([package], root=REPO)
    assert report.checked_files >= 4
    offenders = [f"{v.rule_id} {v.path}:{v.line} {v.message}"
                 for v in report.violations + report.suppressed]
    assert not offenders, "\n".join(offenders)
