"""Online-learner determinism: seeded learned runs are bit-identical.

Adaptive policies are the riskiest state in the simulator for
reproducibility -- every bandit Q update and perceptron weight bump is
order-sensitive.  These property tests pin the contract from
``repro.prefetch.learned``: with a fixed seed, a learned run is
bit-identical across

* repeated runs in one process (no hidden global state),
* serial vs ``jobs=N`` ProcessPool sweeps (no cross-process drift),
* the event and batch backends (exercised per-point in
  ``test_backend_equivalence.py``; asserted here end-to-end through the
  sweep layer, which is how users reach the backends),
* different seeds actually changing behaviour (the seed is real, not
  decorative).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import LearnedConfig
from repro.experiments.sweep import RunSpec, Scheme, run_sweep
from repro.sim.system import run_system

_WORKLOADS = ["605.mcf_s-1536B", "619.lbm_s-2676B", "623.xalancbmk_s-10B",
              "bfs-14", "pr-14"]
_LEARNED = ["bandit", "berti+perceptron"]


def _spec(seed: int) -> RunSpec:
    """A seeded random learned point (tests may use ``random``; the
    simulator itself may not -- that is SIM010's job to enforce)."""
    rng = random.Random(seed)
    cores = rng.choice([1, 2])
    return RunSpec(
        scheme=Scheme.parse(rng.choice(_LEARNED)),
        mix=tuple(rng.choice(_WORKLOADS) for _ in range(cores)),
        channels=1,
        num_cores=cores,
        sim_instructions=rng.choice([1_200, 2_000]),
    )


@pytest.mark.parametrize("seed", range(4))
def test_repeated_learned_runs_are_bit_identical(seed):
    spec = _spec(seed)
    first = run_system(spec.config(), list(spec.mix)).to_dict()
    second = run_system(spec.config(), list(spec.mix)).to_dict()
    assert first == second


def test_learned_sweep_parallel_matches_serial():
    """A ``jobs=2`` ProcessPool sweep of learned points returns exactly
    the serial results (policy state never leaks across processes)."""
    specs = [_spec(seed) for seed in range(3)]
    serial = run_sweep(specs, jobs=1).results
    parallel = run_sweep(specs, jobs=2).results
    assert set(serial) == set(parallel)
    for spec in specs:
        assert serial[spec].to_dict() == parallel[spec].to_dict()


@pytest.mark.parametrize("scheme", _LEARNED)
def test_learned_backends_identical_through_sweep_layer(scheme):
    spec = RunSpec(scheme=Scheme.parse(scheme),
                   mix=("605.mcf_s-1536B", "605.mcf_s-1536B"),
                   channels=1, num_cores=2, sim_instructions=1_500)
    event = run_sweep([spec], backend="event").results[spec]
    batch = run_sweep([spec], backend="batch").results[spec]
    assert event.to_dict() == batch.to_dict()


def test_bandit_seed_actually_steers_the_policy():
    """Changing ``LearnedConfig.seed`` must change bandit behaviour
    (otherwise the determinism tests above would pass vacuously on a
    policy that ignores its stream)."""

    def run_seeded(seed: int):
        config = Scheme.parse("bandit").build_config(
            channels=1, num_cores=2, sim_instructions=2_500)
        config.learned = dataclasses.replace(
            config.learned, seed=seed, epoch_accesses=32,
            epsilon_permille=500)
        result = run_system(config, ["605.mcf_s-1536B"] * 2)
        assert result.counters["core0.chain"]["policy_epochs"] > 0
        return result.to_dict()

    dict_a = run_seeded(1)
    assert run_seeded(1) == dict_a, "same seed must reproduce exactly"
    seeds = [run_seeded(seed) for seed in (2, 3, 4, 5)]
    assert any(d != dict_a for d in seeds), \
        "bandit: seed has no observable effect"


def test_perceptron_seed_steers_the_table_hashing():
    """The perceptron's lane salts are whitened from the seed: two
    instances fed the *same* training stream must end up disagreeing on
    some later admission once weights are trained (different aliasing),
    while two instances with the same seed stay in lockstep."""
    from repro.prefetch.learned import PerceptronFilter

    def decision_pattern(seed: int):
        policy = PerceptronFilter(
            dataclasses.replace(LearnedConfig(policy="perceptron"),
                                seed=seed, table_entries=64,
                                probe_interval=1_000_000), 0)
        # Sparsely train a few lines as useless (so only the aliased
        # weight entries go negative), then read the admission pattern
        # over a disjoint probe block: which probes alias the trained
        # entries depends on the seed-derived salts.  Training runs
        # with the bar floored so every training line admits (and thus
        # trains) even once earlier trainings alias its features; the
        # stride of 65 varies both the page and the offset feature.
        policy.threshold = -1_000
        for i in range(8):
            ip, line = 0x400000 + i * 24, 0x1000 + i * 65
            policy.decide(ip, line, cycle=i)
            policy.update(line, ip, useful=False)
        policy.threshold = 0
        return tuple(policy.decide(0x900000 + i * 40, 0x8000 + i * 65, 0)
                     for i in range(64))

    assert decision_pattern(7) == decision_pattern(7)
    patterns = {decision_pattern(seed) for seed in (7, 8, 9, 10)}
    assert len(patterns) > 1, "perceptron: seed has no observable effect"
