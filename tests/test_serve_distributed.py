"""Integration tests for distributed sweep execution.

These spin up the real thing: a coordinator on an ephemeral localhost
port plus actual ``python -m repro worker`` subprocesses, then assert
the distributed result set is **bit-identical** (per-point
``to_dict()`` diff) to a serial ``run_sweep`` of the same grid.
"""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.experiments.sweep import (ResultStore, RunSpec, Scheme,
                                     run_sweep)
from repro.serve import executor as serve_executor
from repro.serve.wire import spec_from_dict, spec_to_dict
from repro.trace.mixes import homogeneous_mix

MIX = tuple(homogeneous_mix("605.mcf_s-1536B", 2))
TINY = dict(num_cores=2, sim_instructions=800)


def tiny_spec(scheme: Scheme, channels: int = 1) -> RunSpec:
    return RunSpec(scheme=scheme, mix=MIX, channels=channels, **TINY)


def small_grid() -> list:
    return [tiny_spec(Scheme()), tiny_spec(Scheme(l1="berti")),
            tiny_spec(Scheme(l1="berti", clip=True))]


class TestWire:
    """The worker-protocol wire form of a sweep point."""

    SCHEMES = (
        Scheme(),
        Scheme(l1="berti"),
        Scheme(l2="bingo", clip=True),
        Scheme(l1="berti", clip=True,
               clip_overrides={"accuracy_threshold": 0.5,
                               "criticality_count_threshold": 2}),
        Scheme(l1="berti", hermes=True, criticality="fvp",
               llc_kib=256),
    )

    @pytest.mark.parametrize("scheme", SCHEMES,
                             ids=[s.label for s in SCHEMES])
    def test_round_trip_preserves_spec_and_cache_key(self, scheme):
        spec = tiny_spec(scheme)
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt == spec
        assert rebuilt.cache_key() == spec.cache_key()

    def test_wire_form_is_json_safe(self):
        import json
        spec = tiny_spec(self.SCHEMES[3])
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(payload) == spec


class TestDistributedRunSweep:
    def test_matches_serial_per_point(self, tmp_path):
        """Coordinator + 2 real worker subprocesses over localhost
        complete a small grid bit-identically to serial execution."""
        grid = small_grid()
        serial = run_sweep(grid)
        store = ResultStore(tmp_path / "cache")
        distributed = run_sweep(grid, jobs=2, store=store,
                                executor="distributed")
        assert set(distributed.results) == set(serial.results)
        for spec in grid:
            assert distributed.results[spec].to_dict() == \
                serial.results[spec].to_dict(), spec.scheme.label
        # Every point was simulated by a spawned worker subprocess.
        assert distributed.simulated == len(grid)
        producers = {distributed.provenance[spec] for spec in grid}
        assert producers <= {f"local-{i}" for i in range(2)}

    def test_warm_rerun_is_all_cache_hits(self, tmp_path):
        grid = small_grid()[:2]
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(grid, jobs=2, store=store,
                         executor="distributed")
        warm = run_sweep(grid, jobs=2, store=store,
                         executor="distributed")
        assert warm.simulated == 0
        assert warm.cache_hits == len(grid)
        for spec in grid:
            assert warm.results[spec].to_dict() == \
                cold.results[spec].to_dict()
            assert warm.provenance[spec] == "cache"

    def test_fallback_to_local_when_workers_cannot_spawn(
            self, tmp_path, monkeypatch):
        """No worker can start -> RuntimeWarning + local completion."""
        def refuse(url, worker_id, backend=None):
            raise OSError("spawn refused for test")
        monkeypatch.setattr(serve_executor, "spawn_worker", refuse)
        grid = small_grid()[:2]
        serial = run_sweep(grid)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = run_sweep(grid, jobs=2,
                                store=ResultStore(tmp_path / "cache"),
                                executor="distributed")
        assert any(issubclass(w.category, RuntimeWarning)
                   and "falling back" in str(w.message)
                   for w in caught)
        for spec in grid:
            assert outcome.results[spec].to_dict() == \
                serial.results[spec].to_dict()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_sweep(small_grid()[:1], executor="carrier-pigeon")


class TestApiSweep:
    def test_provenance_surfaces_through_api(self, tmp_path):
        result = api.sweep(["berti"], [MIX], jobs=2,
                           cache=str(tmp_path / "cache"),
                           executor="distributed",
                           **TINY)
        [spec] = list(result.specs)
        assert result.producer(spec).startswith("local-")
        # Warm pass through the same cache: served without simulating.
        warm = api.sweep(["berti"], [MIX], jobs=2,
                         cache=str(tmp_path / "cache"),
                         executor="distributed",
                         **TINY)
        [spec] = list(warm.specs)
        assert warm.producer(spec) == "cache"
        assert warm[spec].to_dict() == result[spec].to_dict()
