"""Fault-injection tests for the distributed sweep service.

Three failure modes, each exercised with real processes:

* a worker SIGKILLed mid-job -- its lease expires and the job is
  reassigned to a healthy worker;
* a worker whose executor always raises -- the job is retried, then
  quarantined, and the injected error shows up in ``/status``;
* the coordinator itself SIGTERMed mid-campaign -- it persists a
  manifest, exits 130, and a ``--resume`` run completes the campaign
  with every already-finished point served from the cache (zero
  recomputation).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments.sweep import ResultStore, RunSpec, Scheme
from repro.serve.coordinator import Coordinator, ServeSettings
from repro.serve.executor import _CoordinatorThread, spawn_worker
from repro.serve.queue import QueuePolicy
from repro.serve.worker import fetch_status
from repro.trace.mixes import homogeneous_mix

SRC = str(Path(__file__).resolve().parent.parent / "src")
MIX = tuple(homogeneous_mix("605.mcf_s-1536B", 2))


def tiny_spec(scheme: Scheme) -> RunSpec:
    return RunSpec(scheme=scheme, mix=MIX, channels=1, num_cores=2,
                   sim_instructions=800)


def start_coordinator(tmp_path, specs, policy):
    """Coordinator in a background thread, like run_distributed does."""
    coordinator = Coordinator(
        specs, store=ResultStore(tmp_path / "cache"),
        settings=ServeSettings(policy=policy, tick=0.1,
                               drain_timeout=0.2))
    thread = _CoordinatorThread(coordinator)
    thread.start()
    thread.ready.wait(timeout=30.0)
    assert thread.error is None and coordinator.url is not None
    return coordinator, thread


def stop_coordinator(thread, processes):
    thread.request_stop()
    thread.join(timeout=30.0)
    for process in processes:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def wait_for(url, predicate, timeout=60.0):
    """Poll ``/status`` until ``predicate(status)`` holds."""
    last = None
    until = time.monotonic() + timeout
    while time.monotonic() < until:
        try:
            last = fetch_status(url)
        except OSError:
            time.sleep(0.05)
            continue
        if predicate(last):
            return last
        time.sleep(0.02)
    pytest.fail(f"condition not reached within {timeout}s; "
                f"last status: {last}")


def write_worker_script(tmp_path, name, executor_body):
    """A standalone worker process with an injected executor."""
    script = tmp_path / f"{name}.py"
    script.write_text(textwrap.dedent(f"""\
        import sys, time
        sys.path.insert(0, {SRC!r})
        from repro.serve.worker import worker_loop

        def executor(spec_payload, backend):
        {textwrap.indent(executor_body, '    ')}

        sys.exit(worker_loop(sys.argv[1], worker_id={name!r},
                             executor=executor))
        """))
    return script


class TestWorkerSigkill:
    def test_lease_expires_and_job_is_reassigned(self, tmp_path):
        policy = QueuePolicy(lease_timeout=1.0, max_attempts=5,
                             backoff_base=0.05, backoff_cap=0.2)
        coordinator, thread = start_coordinator(
            tmp_path, [tiny_spec(Scheme(l1="berti"))], policy)
        processes = []
        try:
            hang = write_worker_script(
                tmp_path, "hangman", "time.sleep(600)\n")
            processes.append(subprocess.Popen(
                [sys.executable, str(hang), coordinator.url]))
            # The hung worker holds the lease (heartbeats keep it alive
            # well past lease_timeout) ...
            wait_for(coordinator.url, lambda s: s["inflight"] == 1)
            time.sleep(2.5 * policy.lease_timeout)
            status = fetch_status(coordinator.url)
            assert status["inflight"] == 1 and status["done"] == 0
            # ... until SIGKILL silences the heartbeat.
            os.kill(processes[0].pid, signal.SIGKILL)
            processes[0].wait(timeout=10.0)
            processes.append(spawn_worker(coordinator.url, "rescuer"))
            # The coordinator closes its server once the campaign is
            # terminal, so wait in-process rather than over HTTP.
            assert thread.done.wait(timeout=60.0)
            status = coordinator.status()
            assert status["done"] == 1
            assert status["quarantine"] == []
            job = coordinator.queue.jobs()[0]
            assert job.producer == "rescuer"
            assert job.attempts >= 1  # the expired lease was counted
        finally:
            stop_coordinator(thread, processes)


class TestPoisonJob:
    def test_always_raising_worker_quarantines_after_k_retries(
            self, tmp_path):
        """The poisoned job ends up quarantined, with the injected
        error visible in live ``/status`` output.

        A second, hung job keeps the campaign open so ``/status`` can
        be queried over real HTTP after the quarantine happens (once a
        campaign is terminal the coordinator shuts its server down).
        """
        policy = QueuePolicy(lease_timeout=60.0, max_attempts=2,
                             backoff_base=0.05, backoff_cap=0.1)
        coordinator, thread = start_coordinator(
            tmp_path, [tiny_spec(Scheme()),
                       tiny_spec(Scheme(l1="berti"))], policy)
        processes = []
        try:
            hang = write_worker_script(
                tmp_path, "hangman", "time.sleep(600)\n")
            processes.append(subprocess.Popen(
                [sys.executable, str(hang), coordinator.url]))
            wait_for(coordinator.url, lambda s: s["inflight"] == 1)
            poison = write_worker_script(
                tmp_path, "poison",
                'raise RuntimeError("injected-failure")\n')
            processes.append(subprocess.Popen(
                [sys.executable, str(poison), coordinator.url]))
            status = wait_for(coordinator.url,
                              lambda s: s["quarantined"] == 1)
            assert status["done"] == 0
            [item] = status["quarantine"]
            assert item["attempts"] == policy.max_attempts
            assert "injected-failure" in item["error"]
            assert item["label"] == "berti"
            assert status["workers"]["poison"]["failed"] == \
                policy.max_attempts
        finally:
            stop_coordinator(thread, processes)

    def test_quarantine_surfaces_through_run_sweep(self, tmp_path,
                                                   monkeypatch):
        """run_sweep(executor=...) raises QuarantinedError rather than
        silently dropping poison points."""
        from repro.experiments import sweep as sweep_mod
        from repro.serve import QuarantinedError
        from repro.serve import executor as serve_executor

        poison = write_worker_script(
            tmp_path, "poison2", 'raise RuntimeError("injected-failure")\n')

        def spawn_poison(url, worker_id, backend=None):
            return subprocess.Popen(
                [sys.executable, str(poison), url])

        monkeypatch.setattr(serve_executor, "spawn_worker",
                            spawn_poison)
        with pytest.raises(QuarantinedError, match="injected-failure"):
            sweep_mod.run_sweep(
                [tiny_spec(Scheme())], jobs=1,
                store=ResultStore(tmp_path / "cache"),
                executor="distributed")


class TestCoordinatorSigterm:
    SCHEMES = ("none", "berti", "berti+clip", "bingo", "spp_ppf",
               "berti+hermes")

    def serve_command(self, tmp_path, extra):
        return [sys.executable, "-m", "repro", "serve",
                "--schemes", *self.SCHEMES,
                "--workloads", "605.mcf_s-1536B",
                "--channels", "1", "--cores", "2",
                "--instructions", "20000",
                "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--manifest", str(tmp_path / "manifest.json"),
                *extra]

    def test_sigterm_persists_manifest_and_resume_recomputes_nothing(
            self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        first = subprocess.Popen(
            self.serve_command(tmp_path,
                               ["--status-json",
                                str(tmp_path / "first.json")]),
            stdout=subprocess.PIPE, text=True, env=env,
            cwd=str(tmp_path))
        url = None
        for line in first.stdout:
            if line.startswith("serving campaign on "):
                url = line.split()[3]
                break
        assert url is not None, "serve never reported its URL"
        # Interrupt as soon as real progress exists but work remains.
        wait_for(url, lambda s: s["done"] >= 1)
        first.send_signal(signal.SIGTERM)
        first.stdout.read()  # drain so the child never blocks on write
        assert first.wait(timeout=60.0) == 130
        assert (tmp_path / "manifest.json").exists()
        interrupted = json.loads((tmp_path / "first.json").read_text())
        assert 1 <= interrupted["done"] < interrupted["total"]

        second = subprocess.run(
            self.serve_command(tmp_path,
                               ["--resume", "--status-json",
                                str(tmp_path / "second.json")]),
            capture_output=True, text=True, env=env,
            cwd=str(tmp_path), timeout=300.0)
        assert second.returncode == 0, second.stdout + second.stderr
        resumed = json.loads((tmp_path / "second.json").read_text())
        assert resumed["finished"]
        assert resumed["total"] == interrupted["total"]
        assert resumed["done"] == resumed["total"]
        # Every point the first run finished is a cache hit -- nothing
        # is simulated twice across the interruption.
        assert resumed["cache_hits"] == interrupted["done"]
        assert resumed["simulated"] == \
            interrupted["total"] - interrupted["done"]
