"""Seeded property/fuzz tests for the event engine's ordering contract.

The perf work in the engine (bucketed same-cycle drains, bound-method
callbacks) is only legal if the externally observable contract is
untouched:

* events fire in ``(cycle, insertion-order)`` order -- FIFO within a
  cycle, globally sorted across cycles;
* ``now`` is monotonic, including through the post-run quiescence
  drain;
* ``quiesce_cycle`` equals the cycle of the last drained event;
* scheduling into the past raises ``ValueError``.

Random schedule sequences (fixed seeds, including callbacks that
re-schedule new events mid-drain) exercise those properties far beyond
what the handwritten unit tests cover.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Engine


class _OneShotCore:
    """A core that retires on its first tick, leaving events in flight."""

    def __init__(self) -> None:
        self.next_wake = 0.0
        self.done = False

    def tick(self, cycle: int) -> None:
        self.done = True


def _fuzz_run(seed: int, initial_events: int = 120,
              horizon: int = 60, respawn_window: int = 25):
    """Run a random schedule sequence; returns (engine, schedule log,
    firing log)."""
    rng = random.Random(seed)
    engine = Engine()
    scheduled = []  # (cycle, insertion sequence) at schedule time
    fired = []      # (engine.now, insertion sequence) at fire time

    def make_event(sequence: int, cycle: int, depth: int):
        def fire() -> None:
            fired.append((engine.now, sequence))
            # Sometimes spawn follow-up events mid-drain, including at
            # the *current* cycle (same-cycle growth during a drain).
            if depth < 3 and rng.random() < 0.4:
                offset = rng.randrange(0, respawn_window)
                submit(engine.now + offset, depth + 1)
        return fire

    def submit(cycle: int, depth: int) -> None:
        sequence = len(scheduled)
        scheduled.append((cycle, sequence))
        engine.schedule(cycle, make_event(sequence, cycle, depth))

    for _ in range(initial_events):
        submit(rng.randrange(0, horizon), 0)
    engine.run([_OneShotCore()])
    return engine, scheduled, fired


@pytest.mark.parametrize("seed", range(12))
def test_events_fire_in_cycle_then_insertion_order(seed):
    _, scheduled, fired = _fuzz_run(seed)
    assert len(fired) == len(scheduled)
    expected = [sequence for _, sequence in sorted(scheduled)]
    assert [sequence for _, sequence in fired] == expected


@pytest.mark.parametrize("seed", range(12))
def test_now_monotonic_and_events_never_fire_early(seed):
    _, scheduled, fired = _fuzz_run(seed)
    cycles = [cycle for cycle, _ in fired]
    assert cycles == sorted(cycles), "now went backwards during drain"
    by_sequence = dict((sequence, cycle) for cycle, sequence in scheduled)
    for fired_at, sequence in fired:
        assert fired_at >= by_sequence[sequence]


@pytest.mark.parametrize("seed", range(12))
def test_quiesce_cycle_is_last_drained_event(seed):
    engine, scheduled, fired = _fuzz_run(seed)
    assert engine.events_processed == len(scheduled)
    assert engine.quiesce_cycle == fired[-1][0]
    assert engine.now == engine.quiesce_cycle


@pytest.mark.parametrize("seed", range(6))
def test_scheduling_into_the_past_raises(seed):
    engine, _, _ = _fuzz_run(seed)
    assert engine.now > 0
    with pytest.raises(ValueError):
        engine.schedule(engine.now - 1, lambda: None)


def test_past_schedule_raises_mid_drain():
    """A callback that tries to schedule behind ``now`` must fail even
    while a drain is in progress."""
    engine = Engine()
    failures = []

    def advance() -> None:
        try:
            engine.schedule(engine.now - 1, lambda: None)
        except ValueError:
            failures.append(engine.now)

    engine.schedule(5, advance)
    engine.run([_OneShotCore()])
    assert failures == [5]


def test_schedule_at_now_during_drain_runs_this_cycle():
    """Events scheduled *at* the current cycle from inside a callback
    still fire within the same drain, after already-queued peers."""
    engine = Engine()
    order = []

    def first() -> None:
        order.append("first")
        engine.schedule(engine.now, lambda: order.append("spawned"))

    engine.schedule(3, first)
    engine.schedule(3, lambda: order.append("second"))
    engine.run([_OneShotCore()])
    assert order == ["first", "second", "spawned"]
    assert engine.quiesce_cycle == 3
