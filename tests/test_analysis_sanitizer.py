"""Tests for the runtime invariant sanitizer (repro.analysis.sanitizer).

Three claims are proven here:

1. **Off means off** -- a default-configured system installs no wrappers
   at all (the hot-path methods stay plain class attributes);
2. **On means checking** -- a sanitized end-to-end run completes with
   thousands of invariant evaluations across every category;
3. **Corruption is caught** -- deliberately breaking each protected
   invariant raises :class:`SimulationInvariantError` at the first bad
   event, not at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import SimulationInvariantError, check
from repro.analysis.sanitizer import (Sanitizer, install_sanitizer,
                                      sanitize_enabled)
from repro.cache.cache import Cache
from repro.cache.mshr import MshrFile
from repro.config import CacheConfig, scaled_config
from repro.sim.engine import Engine
from repro.sim.system import MulticoreSystem
from repro.trace import homogeneous_mix

WORKLOAD = "605.mcf_s-1536B"


def tiny_system(sanitize: bool = False) -> MulticoreSystem:
    config = scaled_config(num_cores=2, channels=1, sim_instructions=1_500)
    config.sanitize = sanitize
    return MulticoreSystem(config, homogeneous_mix(WORKLOAD, 2))


# ----------------------------------------------------------------------
# Enablement plumbing
# ----------------------------------------------------------------------

class TestEnablement:
    def test_default_is_off(self):
        assert not sanitize_enabled(environ={})

    def test_env_var_enables(self):
        assert sanitize_enabled(environ={"REPRO_SANITIZE": "1"})
        assert sanitize_enabled(environ={"REPRO_SANITIZE": "yes"})

    def test_falsey_env_values_stay_off(self):
        for value in ("", "0", "false", "no", "off", " 0 ", "FALSE"):
            assert not sanitize_enabled(environ={"REPRO_SANITIZE": value})

    def test_config_flag_enables(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=100)
        config.sanitize = True
        assert sanitize_enabled(config, environ={})

    def test_env_var_wires_system(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        system = tiny_system(sanitize=False)
        assert system.sanitizer is not None

    def test_env_var_zero_does_not_wire(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        system = tiny_system(sanitize=False)
        assert system.sanitizer is None


class TestZeroOverheadWhenOff:
    def test_no_hooks_installed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        system = tiny_system(sanitize=False)
        assert system.sanitizer is None
        # The wrappers are per-instance attributes; when off, every hot
        # method must still resolve to the plain class attribute.
        assert "schedule" not in vars(system.engine)
        assert "_drain_events_at" not in vars(system.engine)
        assert "send" not in vars(system.noc)
        for channel in system.dram.channels:
            assert "_service" not in vars(channel)
        for node in system.nodes:
            assert "fill" not in vars(node.l1d)
            assert "allocate" not in vars(node.l1_mshr)
        for core in system.cores:
            assert "_account_retire" not in vars(core)


# ----------------------------------------------------------------------
# End-to-end sanitized runs
# ----------------------------------------------------------------------

class TestSanitizedRun:
    def test_clean_run_passes_and_counts_checks(self):
        system = tiny_system(sanitize=True)
        sanitizer = system.sanitizer
        assert sanitizer is not None
        result = system.run()
        assert result.total_instructions > 0
        assert sanitizer.checks_run > 1_000
        for category in ("engine", "mshr", "cache", "dram", "noc", "rob",
                         "final"):
            assert sanitizer.checks_by_category.get(category, 0) > 0, (
                f"no {category} checks ran")
        assert "checks" in sanitizer.summary()

    def test_sanitized_matches_unsanitized_result(self):
        # The sanitizer observes; it must never perturb simulated time.
        clean = tiny_system(sanitize=False).run()
        checked = tiny_system(sanitize=True).run()
        assert checked.total_cycles == clean.total_cycles
        assert checked.ipc_per_core == clean.ipc_per_core
        assert checked.dram.reads == clean.dram.reads


# ----------------------------------------------------------------------
# Corruption detection, component by component
# ----------------------------------------------------------------------

class TestEngineInvariants:
    def test_schedule_in_past_caught(self):
        engine = Engine()
        Sanitizer().wrap_engine(engine)
        engine.now = 100
        with pytest.raises(SimulationInvariantError, match="past"):
            engine.schedule(50, lambda: None)

    def test_non_integer_cycle_caught(self):
        engine = Engine()
        Sanitizer().wrap_engine(engine)
        with pytest.raises(SimulationInvariantError, match="non-integer"):
            engine.schedule(10.5, lambda: None)

    def test_time_rewind_caught(self):
        engine = Engine()
        Sanitizer().wrap_engine(engine)
        engine.now = 40
        engine._drain_events_at(40)
        engine.now = 30  # simulated-time rewind
        with pytest.raises(SimulationInvariantError, match="backwards"):
            engine._drain_events_at(30)


class TestMshrInvariants:
    def wrapped(self, capacity: int = 4) -> MshrFile:
        mshr_file = MshrFile(capacity)
        Sanitizer().wrap_mshr(mshr_file, "test MSHR")
        return mshr_file

    def test_occupancy_bound_enforced(self):
        mshr_file = self.wrapped(capacity=2)
        mshr_file.allocate(0x100, False, False, 0, 0)
        mshr_file.allocate(0x200, False, False, 0, 0)
        with pytest.raises(SimulationInvariantError, match="full"):
            mshr_file.allocate(0x300, False, False, 0, 0)

    def test_duplicate_allocation_caught(self):
        mshr_file = self.wrapped()
        mshr_file.allocate(0x100, False, False, 0, 0)
        with pytest.raises(SimulationInvariantError,
                           match="already outstanding"):
            mshr_file.allocate(0x100, True, False, 0, 5)

    def test_phantom_release_caught(self):
        mshr_file = self.wrapped()
        with pytest.raises(SimulationInvariantError, match="release"):
            mshr_file.release(0xdead)

    def test_foreign_merge_caught(self):
        mshr_file = self.wrapped()
        mshr = mshr_file.allocate(0x100, False, False, 0, 0)
        mshr_file.release(0x100)
        with pytest.raises(SimulationInvariantError, match="merge"):
            mshr_file.merge(mshr, None, False)

    def test_clean_sequence_passes(self):
        mshr_file = self.wrapped()
        mshr = mshr_file.allocate(0x100, False, False, 0, 0)
        mshr_file.merge(mshr, None, True)
        assert mshr_file.release(0x100) is mshr


class TestCacheInvariants:
    def wrapped(self) -> Cache:
        cache = Cache(CacheConfig(name="toy", size_kib=4, ways=2,
                                  line_size=64, mshr_entries=4))
        Sanitizer().wrap_cache(cache, "toy cache")
        return cache

    def test_clean_fills_pass(self):
        cache = self.wrapped()
        for line in range(4):
            cache.fill(line, pc=0, now=line)
            assert cache.probe(line)

    def test_corrupted_tag_map_caught(self):
        cache = self.wrapped()
        cache.fill(0x10, pc=0, now=0)
        set_index = cache.set_index(0x10)
        # Point the tag map at a way that holds nothing.
        cache._map[set_index][0xBAD] = 1
        with pytest.raises(SimulationInvariantError):
            cache.fill(0x10 + cache.num_sets, pc=0, now=1)

    def test_invalidate_checked(self):
        cache = self.wrapped()
        cache.fill(0x20, pc=0, now=0)
        cache.invalidate(0x20)
        assert not cache.probe(0x20)


class TestRobInvariants:
    class FakeEntry:
        def __init__(self, seq, done_at):
            self.seq = seq
            self.done_at = done_at

    class FakeCore:
        core_id = 0

        def __init__(self):
            self.retired = []

        def _account_retire(self, entry, cycle):
            self.retired.append(entry.seq)

    def test_fifo_order_enforced(self):
        core = self.FakeCore()
        Sanitizer().wrap_core(core)
        core._account_retire(self.FakeEntry(0, done_at=5), 10)
        with pytest.raises(SimulationInvariantError, match="FIFO"):
            core._account_retire(self.FakeEntry(2, done_at=5), 11)

    def test_retire_before_completion_caught(self):
        core = self.FakeCore()
        Sanitizer().wrap_core(core)
        with pytest.raises(SimulationInvariantError, match="completing"):
            core._account_retire(self.FakeEntry(0, done_at=20), 10)

    def test_clean_retirement_passes(self):
        core = self.FakeCore()
        Sanitizer().wrap_core(core)
        for seq in range(3):
            core._account_retire(self.FakeEntry(seq, done_at=seq), seq + 1)
        assert core.retired == [0, 1, 2]


class TestDramInvariants:
    def test_timing_tamper_caught(self):
        system = tiny_system(sanitize=True)
        channel = system.dram.channels[0]
        orig_service = type(channel)._service

        def tampered(request, now):
            orig_service(channel, request, now)
            channel.banks[request.bank].ready_at -= 1  # shave tRP spacing

        # Re-wrap the tampered implementation the same way install did.
        channel._service = tampered
        system.sanitizer.wrap_dram_channel(channel)
        from repro.dram.controller import DramRequest
        request = DramRequest(0x1000, bank=0, row=3, is_prefetch=False,
                              crit=False, enqueued_at=0,
                              callback=lambda done: None)
        with pytest.raises(SimulationInvariantError, match="spacing"):
            channel._service(request, 0)


class TestFinalCheck:
    def test_leftover_mshr_entry_caught(self):
        system = tiny_system(sanitize=True)
        system.run()
        system.nodes[0].l1_mshr.entries[0xF00] = object()
        with pytest.raises(SimulationInvariantError, match="quiescent"):
            system.sanitizer.final_check(system)

    def test_inconsistent_prefetch_stats_caught(self):
        system = tiny_system(sanitize=True)
        system.run()
        stats = system.prefetch_stats
        stats.dropped_filter = stats.candidates + 1
        with pytest.raises(SimulationInvariantError, match="statistics"):
            system.sanitizer.final_check(system)


# ----------------------------------------------------------------------
# check() helper
# ----------------------------------------------------------------------

class TestCheckHelper:
    def test_passing_condition_is_silent(self):
        check(True, "never formatted %d", 1)

    def test_failing_condition_formats_lazily(self):
        with pytest.raises(SimulationInvariantError,
                           match=r"line 0xff stuck at 7"):
            check(False, "line %#x stuck at %d", 0xFF, 7)

    def test_is_runtime_error_subclass(self):
        # Pre-existing callers catch RuntimeError; the sanitizer must not
        # break them.
        assert issubclass(SimulationInvariantError, RuntimeError)
