"""Deep-dive tests: Berti's scoring internals and DRAM scheduling policy."""

from __future__ import annotations

from repro.config import DramConfig
from repro.dram.controller import DramChannel, DramRequest, DramSystem
from repro.prefetch.berti import BertiPrefetcher
from repro.sim.engine import Engine


class TestBertiScoring:
    def _train(self, berti, ip=0x400, count=200, interval=30, latency=150):
        for i in range(count):
            address = 0x10000 + i * 64
            cycle = i * interval
            berti.on_access(ip, address, False, cycle)
            berti.on_fill(address, cycle + latency, prefetch=False, ip=ip,
                          issued_at=cycle)

    def test_aging_halves_votes(self):
        berti = BertiPrefetcher()
        self._train(berti, count=BertiPrefetcher.AGING_LIMIT + 5)
        state = berti._table[0x400]
        assert state.opportunities < BertiPrefetcher.AGING_LIMIT

    def test_watermark_splits_fill_levels(self):
        berti = BertiPrefetcher(degree=8)
        self._train(berti)
        state = berti._table[0x400]
        # Force a mixed-confidence best list and check classification.
        state.best = [(4, 0.9), (7, 0.3)]
        requests = berti.on_access(0x400, 0x90000, False, 10_000)
        by_delta = {(r.address - 0x90000) // 64: r.fill_level
                    for r in requests}
        assert by_delta[4] == 1   # high coverage -> L1
        assert by_delta[7] == 2   # low coverage  -> L2

    def test_ties_prefer_larger_deltas(self):
        berti = BertiPrefetcher()
        self._train(berti)
        state = berti._table[0x400]
        coverages = [c for _, c in state.best]
        deltas = [abs(d) for d, _ in state.best]
        for i in range(len(state.best) - 1):
            if coverages[i] == coverages[i + 1]:
                assert deltas[i] >= deltas[i + 1]

    def test_unknown_ip_fill_is_ignored(self):
        berti = BertiPrefetcher()
        berti.on_fill(0x5000, 100, prefetch=False, ip=0xDEAD, issued_at=50)
        assert 0xDEAD not in berti._table

    def test_prefetch_fills_do_not_train(self):
        berti = BertiPrefetcher()
        berti.on_access(0x400, 0x1000, False, 0)
        berti.on_fill(0x1040, 200, prefetch=True, ip=0x400, issued_at=0)
        assert berti._table[0x400].delta_votes == {}


def _drain(engine: Engine) -> None:
    while engine.pending_events:
        engine.now = engine.next_event_cycle
        engine._drain_events_at(engine.now)


class TestDramScheduling:
    def _channel(self, **config_kw):
        engine = Engine()
        config = DramConfig(channels=1, **config_kw)
        system = DramSystem(config, engine)
        return engine, system, system.channels[0]

    def test_write_watermark_triggers_drain(self):
        engine, system, channel = self._channel()
        watermark = int(system.config.write_queue_entries
                        * system.config.write_watermark)
        # Saturate the read path so writes would otherwise wait forever.
        reads_done = []
        for i in range(200):
            system.read(i, now=0, callback=reads_done.append)
        for i in range(watermark + 1):
            system.write((i + 1) * 977, now=0)
        _drain(engine)
        assert system.total_writes == watermark + 1
        assert len(reads_done) == 200

    def test_fr_fcfs_prefers_row_hit(self):
        engine, system, channel = self._channel()
        order = []
        # Prime bank/row state.
        system.read(0, now=0, callback=lambda t: order.append("prime"))
        _drain(engine)
        now = engine.now
        # A row conflict (same bank, different row) enqueued first...
        mapping = system.mapping
        prime = mapping.locate(0)
        conflict = next(line for line in range(64, 1 << 22, 64)
                        if mapping.locate(line).bank == prime.bank
                        and mapping.locate(line).row != prime.row)
        # Fill all in-flight slots so both land in the queue together.
        blockers = []
        for i in range(DramChannel.MAX_IN_FLIGHT):
            system.read(1 + i, now=now,
                        callback=lambda t: blockers.append(t))
        system.read(conflict, now=now,
                    callback=lambda t: order.append("conflict"))
        system.read(2 + DramChannel.MAX_IN_FLIGHT, now=now,
                    callback=lambda t: order.append("hit"))
        _drain(engine)
        assert order.index("hit") < order.index("conflict")

    def test_row_hit_rate_tracked(self):
        engine, system, channel = self._channel()
        for line in range(16):
            system.read(line, now=0, callback=lambda t: None)
        _drain(engine)
        assert channel.stats.row_hits > channel.stats.row_misses

    def test_average_latency_grows_under_load(self):
        engine_light, system_light, _ = self._channel()
        system_light.read(0, now=0, callback=lambda t: None)
        _drain(engine_light)
        light = system_light.average_read_latency()
        engine_heavy, system_heavy, _ = self._channel()
        for line in range(0, 6400, 7):
            system_heavy.read(line, now=0, callback=lambda t: None)
        _drain(engine_heavy)
        heavy = system_heavy.average_read_latency()
        assert heavy > light

    def test_more_channels_spread_load(self):
        engine1, system1, _ = self._channel()
        engine4 = Engine()
        system4 = DramSystem(DramConfig(channels=4), engine4)
        for line in range(256):
            system1.read(line, now=0, callback=lambda t: None)
            system4.read(line, now=0, callback=lambda t: None)
        _drain(engine1)
        _drain(engine4)
        assert system4.average_read_latency() < system1.average_read_latency()
