"""Tests for the CLIP extensions: Dynamic CLIP (paper section 5.3 future
work) and page-indexed tracking for non-IP L2 prefetchers (section 4.2)."""

from __future__ import annotations

import dataclasses

from repro import run_system, scaled_config
from repro.config import ClipConfig
from repro.core.clip import Clip
from repro.trace import homogeneous_mix


def _clip(**kw) -> Clip:
    return Clip(dataclasses.replace(
        ClipConfig(enabled=True, exploration_window_misses=4,
                   apc_history_windows=4), **kw))


class TestDynamicClip:
    def _certify(self, clip: Clip, ip: int) -> None:
        for _ in range(4):
            clip.filter.record_critical(ip)
        clip.predictor.train(clip._signature(ip, 0x4000 >> 6), True)

    def test_bypass_under_ample_bandwidth(self):
        clip = _clip(dynamic=True)
        clip.bandwidth_probe = lambda: 0.05
        for _ in range(4):
            clip.on_l1d_miss(cycle=100)
        # Unknown IP would normally be dropped; bypass lets it through.
        allowed, crit = clip.filter_request(0x999, 0x8000, cycle=200)
        assert allowed and not crit

    def test_reengages_when_bandwidth_tightens(self):
        clip = _clip(dynamic=True)
        utilization = [0.05]
        clip.bandwidth_probe = lambda: utilization[0]
        for _ in range(4):
            clip.on_l1d_miss(cycle=100)
        assert clip._dynamic_bypassed
        utilization[0] = 0.95
        for _ in range(4):
            clip.on_l1d_miss(cycle=200)
        assert not clip._dynamic_bypassed
        allowed, _ = clip.filter_request(0x999, 0x8000, cycle=300)
        assert not allowed

    def test_hysteresis_band_holds_state(self):
        clip = _clip(dynamic=True)
        utilization = [0.05]
        clip.bandwidth_probe = lambda: utilization[0]
        for _ in range(4):
            clip.on_l1d_miss(cycle=100)
        assert clip._dynamic_bypassed
        # In the hysteresis band: stays bypassed.
        utilization[0] = 0.38
        for _ in range(4):
            clip.on_l1d_miss(cycle=200)
        assert clip._dynamic_bypassed

    def test_static_clip_never_bypasses(self):
        clip = _clip(dynamic=False)
        clip.bandwidth_probe = lambda: 0.0
        for _ in range(4):
            clip.on_l1d_miss(cycle=100)
        allowed, _ = clip.filter_request(0x999, 0x8000, cycle=200)
        assert not allowed

    def test_end_to_end_dynamic_at_high_bandwidth(self):
        """With many channels, dynamic CLIP converges toward plain Berti."""
        config = scaled_config(num_cores=2, channels=8,
                               sim_instructions=5_000)
        config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                                   name="berti")
        mix = homogeneous_mix("603.bwaves_s-1740B", 2)
        plain = run_system(config, mix)
        config.clip = dataclasses.replace(config.clip, enabled=True,
                                          dynamic=True)
        dynamic = run_system(config, mix)
        config.clip = dataclasses.replace(config.clip, dynamic=False)
        static = run_system(config, mix)
        # Dynamic CLIP lets more traffic through than static CLIP when
        # bandwidth is ample.
        assert dynamic.prefetch.issued >= static.prefetch.issued


class TestPageIndexedClip:
    def test_key_is_page(self):
        clip = _clip(index_by_page=True)
        assert clip._key(0x400, 0x12345) == 0x12345 >> 12
        ip_clip = _clip(index_by_page=False)
        assert ip_clip._key(0x400, 0x12345) == 0x400

    def test_page_criticality_gates_prefetches(self):
        clip = _clip(index_by_page=True)
        page_address = 0x40_0000
        # Mark the page critical (as L2-miss responses would).
        for _ in range(4):
            clip.filter.record_critical(page_address >> 12)
        clip.predictor.train(
            clip._signature(page_address >> 12, page_address >> 6), True)
        # Any trigger IP prefetching into that page passes...
        allowed, _ = clip.filter_request(0xAAA, page_address + 256, cycle=0)
        assert allowed
        # ...while another page is dropped.
        allowed, _ = clip.filter_request(0xAAA, 0x80_0000, cycle=0)
        assert not allowed

    def test_end_to_end_with_l2_prefetcher(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=5_000)
        config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                                   name="spp_ppf")
        config.clip = dataclasses.replace(config.clip, enabled=True,
                                          index_by_page=True)
        result = run_system(config, homogeneous_mix("603.bwaves_s-1740B", 2))
        assert result.clip is not None
        assert result.clip.prefetches_seen > 0
