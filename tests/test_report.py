"""Tests for the markdown report renderer."""

from __future__ import annotations

from repro import run_system, scaled_config
from repro.experiments.report import comparison_report, run_report
from repro.sim.tracing import RequestTrace, RequestRecord
from repro.cpu.core_model import ServiceLevel
from repro.trace import homogeneous_mix


def _run(prefetcher="none", clip=False):
    config = scaled_config(num_cores=2, channels=1, sim_instructions=1_200)
    config.l1_prefetcher.name = prefetcher
    config.clip.enabled = clip
    return run_system(config, homogeneous_mix("605.mcf_s-1536B", 2))


class TestRunReport:
    def test_sections_present(self):
        text = run_report(_run(), title="T")
        for needle in ("# T", "## Headline metrics", "## Per-core",
                       "## Cache levels"):
            assert needle in text

    def test_clip_section_when_enabled(self):
        text = run_report(_run("berti", clip=True))
        assert "## CLIP" in text
        assert "prediction accuracy" in text

    def test_no_clip_section_when_disabled(self):
        assert "## CLIP" not in run_report(_run())

    def test_latency_section_with_trace(self):
        trace = RequestTrace()
        trace.append(RequestRecord(0, 0x1000, 0, 100, ServiceLevel.DRAM,
                                   False))
        text = run_report(_run(), trace=trace)
        assert "## Demand-load latency" in text
        assert "p99" in text

    def test_tables_are_markdown(self):
        text = run_report(_run())
        assert "| metric | value |" in text
        assert "|---|---|" in text


class TestComparisonReport:
    def test_rows_per_scheme(self):
        results = {"none": _run(), "berti": _run("berti")}
        text = comparison_report(results)
        assert "| none |" in text
        assert "| berti |" in text
        assert "weighted_speedup" in text
