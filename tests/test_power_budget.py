"""Power model and power-budget sweep driver tests."""

from __future__ import annotations

import pytest

from repro.config import (CoreConfig, SystemConfig, big_little_overrides,
                          little_core, scaled_config)
from repro.energy import (BASE_CORE_POWER_W, core_power_w, cores_power_w,
                          package_power_w, uncore_static_w)
from repro.experiments import BenchScale, ExperimentRunner
from repro.experiments.power_budget import (frequency_adjusted_speedup,
                                            power_budget_study)
from repro.sim.stats import CoreResult, SimulationResult
from repro.sim.system import run_system


class TestCorePower:
    def test_reference_core_is_the_baseline(self):
        assert core_power_w(CoreConfig()) == pytest.approx(
            BASE_CORE_POWER_W)

    def test_little_core_is_cheaper(self):
        assert core_power_w(little_core()) < core_power_w(CoreConfig())

    def test_frequency_scales_cubically(self):
        half = CoreConfig(frequency_ghz=2.0)
        assert core_power_w(half) == pytest.approx(
            BASE_CORE_POWER_W / 8.0)

    def test_cores_power_honours_overrides(self):
        symmetric = SystemConfig(num_cores=4)
        hetero = SystemConfig(num_cores=4)
        hetero.core_overrides = big_little_overrides(4, 2)
        assert cores_power_w(hetero) < cores_power_w(symmetric)
        assert cores_power_w(symmetric) == pytest.approx(
            4 * BASE_CORE_POWER_W)

    def test_uncore_static_grows_with_channels(self):
        few = scaled_config(num_cores=4, channels=1)
        many = scaled_config(num_cores=4, channels=4)
        assert uncore_static_w(many) > uncore_static_w(few)


class TestPackagePower:
    def test_package_power_from_simulation(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=1_500)
        result = run_system(config, ["605.mcf_s-1536B"] * 2)
        power = package_power_w(result, config)
        # At least the cores + static floor, plus some uncore dynamic.
        floor = cores_power_w(config) + uncore_static_w(config)
        assert power > floor

    def test_lower_frequency_lower_power(self):
        base = scaled_config(num_cores=2, channels=1,
                             sim_instructions=1_500)
        slow = base.at_frequency(3.0)
        mix = ["605.mcf_s-1536B"] * 2
        fast_power = package_power_w(run_system(base, mix), base)
        slow_power = package_power_w(run_system(slow, mix), slow)
        assert slow_power < fast_power


class TestFrequencyAdjustedSpeedup:
    def _result(self, ipcs):
        result = SimulationResult(config_label="t")
        for i, ipc in enumerate(ipcs):
            result.cores.append(CoreResult(
                core_id=i, workload="w", instructions=1000,
                cycles=int(1000 / ipc), loads=0, stores=0, branches=0,
                mispredicts=0, head_stall_cycles=0,
                head_stall_cycles_miss=0, critical_load_instances=0,
                load_instances_beyond_l1=0))
        return result

    def test_identity_at_same_frequency(self):
        a = self._result([0.5, 0.5])
        assert frequency_adjusted_speedup(a, a, 4.0, 4.0) \
            == pytest.approx(1.0)

    def test_equal_rates_across_frequencies(self):
        """Half the IPC at twice the clock is the same instruction rate."""
        slow_clock = self._result([1.0])
        fast_clock = self._result([0.5])
        assert frequency_adjusted_speedup(fast_clock, slow_clock,
                                          8.0, 4.0) == pytest.approx(1.0)

    def test_mismatched_cores_rejected(self):
        with pytest.raises(ValueError):
            frequency_adjusted_speedup(self._result([1.0]),
                                       self._result([1.0, 1.0]), 4.0, 4.0)


class TestPowerBudgetStudy:
    @pytest.fixture(scope="class")
    def study(self):
        runner = ExperimentRunner(BenchScale(num_cores=4,
                                             sim_instructions=1_500))
        out = power_budget_study(runner, budget_w=9.0,
                                 frequencies=(3.0, 4.0), sample=1,
                                 quiet=True)
        return out

    def test_grid_covers_variants_and_frequencies(self, study):
        assert set(study["grid"]) == {
            "symmetric@3GHz", "symmetric@4GHz",
            "big.little@3GHz", "big.little@4GHz"}
        for row in study["grid"].values():
            assert row["power_w"] > 0
            assert row["energy_mj"] > 0
            assert row["edp_mj_s"] > 0
            assert row["speedup"] > 0

    def test_best_point_fits_the_budget(self, study):
        assert study["budget_w"] == 9.0
        if study["best"] is not None:
            assert study["grid"][study["best"]]["power_w"] <= 9.0

    def test_impossible_budget_has_no_winner(self):
        runner = ExperimentRunner(BenchScale(num_cores=4,
                                             sim_instructions=1_500))
        out = power_budget_study(runner, budget_w=0.001,
                                 frequencies=(4.0,), sample=1,
                                 quiet=True)
        assert out["best"] is None

    def test_biglittle_uses_less_power_than_symmetric(self, study):
        for freq in ("3GHz", "4GHz"):
            assert (study["grid"][f"big.little@{freq}"]["power_w"]
                    < study["grid"][f"symmetric@{freq}"]["power_w"])
