"""Behavioural checks of the named workload models.

Each benchmark family must exhibit its signature memory character in the
generated instruction stream -- these are the properties the substitution
argument in DESIGN.md section 2 rests on.
"""

from __future__ import annotations

from collections import Counter

from repro.trace import (CLOUDSUITE_WORKLOADS, GAP_WORKLOADS, Op,
                         SyntheticWorkload, get_workload)

_LENGTH = 6_000


def _trace(name: str):
    return SyntheticWorkload(get_workload(name)).generate(_LENGTH)


def _loads(trace):
    return [r for r in trace if r.op == Op.LOAD]


def _unique_line_fraction(loads) -> float:
    lines = [r.address >> 6 for r in loads]
    return len(set(lines)) / max(1, len(lines))


def _footprint_bytes(loads) -> int:
    lines = {r.address >> 6 for r in loads}
    return len(lines) * 64


class TestMcfFamily:
    def test_pointer_serialisation_present(self):
        trace = _trace("605.mcf_s-1536B")
        chased = [r for r in _loads(trace) if r.srcs == (r.dst,)]
        assert len(chased) > 20

    def test_large_footprint(self):
        loads = _loads(_trace("605.mcf_s-1536B"))
        addresses = [r.address for r in loads]
        # The pointer chase ranges over a multi-MiB structure even though a
        # short trace only samples part of it.
        assert max(addresses) - min(addresses) > 1 << 21

    def test_hot_working_set_dominates_accesses(self):
        loads = _loads(_trace("605.mcf_s-1536B"))
        counts = Counter(r.address >> 6 for r in loads)
        hot = sum(c for _, c in counts.most_common(len(counts) // 10 or 1))
        assert hot / len(loads) > 0.3


class TestLbmFamily:
    def test_streaming_stores(self):
        trace = _trace("619.lbm_s-2676B")
        stores = [r for r in trace if r.op == Op.STORE]
        assert len(stores) / len(trace) > 0.02
        # Stores walk forward (streaming), not random.
        deltas = [b.address - a.address
                  for a, b in zip(stores, stores[1:])]
        forward = sum(1 for d in deltas if 0 < d <= 4096)
        assert forward / len(deltas) > 0.5

    def test_memory_intensity_above_integer_codes(self):
        lbm_loads = len(_loads(_trace("619.lbm_s-2676B")))
        gcc_loads = len(_loads(_trace("602.gcc_s-1850B")))
        lbm_unique = _unique_line_fraction(_loads(_trace("619.lbm_s-2676B")))
        gcc_unique = _unique_line_fraction(_loads(_trace("602.gcc_s-1850B")))
        assert lbm_unique > gcc_unique


class TestHpcFamilies:
    def test_bwaves_has_strided_streams(self):
        loads = _loads(_trace("603.bwaves_s-1740B"))
        per_ip = {}
        for record in loads:
            per_ip.setdefault(record.ip, []).append(record.address)
        stride_ips = 0
        for addresses in per_ip.values():
            if len(addresses) < 10:
                continue
            deltas = Counter(b - a for a, b in zip(addresses,
                                                   addresses[1:]))
            top_delta, top_count = deltas.most_common(1)[0]
            if top_delta != 0 and top_count / len(addresses) > 0.5:
                stride_ips += 1
        assert stride_ips >= 2

    def test_cactu_uses_long_strides(self):
        spec = get_workload("607.cactuBSSN_s-2421B")
        strides = {s.stride for s in spec.streams if s.kind == "stride"}
        assert any(stride >= 256 for stride in strides)


class TestIrregularIntFamilies:
    def test_gcc_has_phases(self):
        assert get_workload("602.gcc_s-1850B").phases > 1

    def test_branch_density_higher_than_hpc(self):
        gcc = _trace("602.gcc_s-1850B")
        lbm = _trace("619.lbm_s-2676B")
        gcc_branches = sum(1 for r in gcc if r.op == Op.BRANCH) / len(gcc)
        lbm_branches = sum(1 for r in lbm if r.op == Op.BRANCH) / len(lbm)
        assert gcc_branches > lbm_branches * 0.8


class TestGapFamily:
    def test_irregular_low_stride_coverage(self):
        for name in GAP_WORKLOADS[:2]:
            loads = _loads(_trace(name))
            deltas = Counter(b.address - a.address
                             for a, b in zip(loads, loads[1:]))
            _, top_count = deltas.most_common(1)[0]
            # No single delta dominates an irregular graph workload.
            assert top_count / len(loads) < 0.5


class TestCloudFamily:
    def test_cache_resident_majority(self):
        """Cloud workloads re-touch a small set (prefetchers find little)."""
        for name in CLOUDSUITE_WORKLOADS[:2]:
            loads = _loads(_trace(name))
            assert _unique_line_fraction(loads) < 0.5


class TestCrossFamily:
    def test_simpoints_same_family_differ_in_addresses(self):
        a = _loads(_trace("605.mcf_s-1536B"))
        b = _loads(_trace("605.mcf_s-472B"))
        assert {r.address for r in a} != {r.address for r in b}

    def test_all_models_generate_loads_and_branches(self):
        for name in ["600.perlbench_s-570B", "628.pop2_s-17B", "bfs-14",
                     "server_013", "657.xz_s-1306B"]:
            trace = _trace(name)
            kinds = {r.op for r in trace}
            assert Op.LOAD in kinds and Op.BRANCH in kinds
