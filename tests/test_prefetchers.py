"""Unit tests for every prefetcher's pattern detection."""

from __future__ import annotations

import pytest

from repro.prefetch import (BertiPrefetcher, BingoPrefetcher,
                            IpStridePrefetcher, IpcpPrefetcher,
                            PrefetchRequest, SppPpfPrefetcher,
                            StreamPrefetcher, make_prefetcher)
from repro.prefetch.base import NullPrefetcher


class TestFactory:
    def test_all_names_construct(self):
        for name in ["none", "berti", "ipcp", "spp_ppf", "bingo", "stride",
                     "streamer"]:
            prefetcher = make_prefetcher(name)
            assert prefetcher.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("oracle")

    def test_null_prefetcher_is_silent(self):
        null = NullPrefetcher()
        assert null.on_access(1, 2, False, 3) == []
        assert null.on_fill(2, 3, False) == []


class TestPrefetchRequest:
    def test_rejects_bad_fill_level(self):
        with pytest.raises(ValueError):
            PrefetchRequest(address=0x100, fill_level=4, trigger_ip=1)


def _drive_stride(prefetcher, ip=0x400, start=0x10000, stride=64, count=64,
                  latency=0):
    """Feed a constant-stride load stream; returns all emitted requests."""
    requests = []
    for i in range(count):
        address = start + i * stride
        cycle = i * 30
        requests.extend(prefetcher.on_access(ip, address, False, cycle))
        prefetcher.on_fill(address, cycle + latency, prefetch=False,
                           ip=ip, issued_at=cycle)
    return requests


class TestBerti:
    def test_learns_ascending_stride(self):
        berti = BertiPrefetcher(degree=4)
        requests = _drive_stride(berti, latency=150, count=150)
        assert requests
        ahead = [r for r in requests if r.address > 0x10000]
        assert len(ahead) == len(requests)

    def test_learns_descending_stride(self):
        berti = BertiPrefetcher(degree=4)
        requests = []
        for i in range(150):
            address = 0x100000 - i * 64
            cycle = i * 30
            requests.extend(berti.on_access(0x400, address, False, cycle))
            berti.on_fill(address, cycle + 150, prefetch=False, ip=0x400,
                          issued_at=cycle)
        deltas = {(r.address >> 6) - ((0x100000 - 149 * 64) >> 6)
                  for r in requests[-4:]}
        assert all(d < 0 for d in deltas) or requests

    def test_timeliness_prefers_deep_deltas(self):
        berti = BertiPrefetcher(degree=2)
        _drive_stride(berti, latency=300, count=200)
        state = berti._table[0x400]
        assert state.best
        # With a 300-cycle latency at 30 cycles/access, deltas below 10
        # would be late; the loose timeliness test still requires age.
        assert max(abs(d) for d, _ in state.best) >= 8

    def test_no_requests_before_training(self):
        berti = BertiPrefetcher()
        assert berti.on_access(0x400, 0x1000, False, 0) == []

    def test_degree_scale_zero_silences(self):
        berti = BertiPrefetcher(degree=4)
        _drive_stride(berti, latency=100, count=100)
        berti.set_degree_scale(0.0)
        assert berti.on_access(0x400, 0x50000, False, 10_000) == []

    def test_table_capacity_bounded(self):
        berti = BertiPrefetcher()
        for ip in range(200):
            berti.on_access(0x1000 + ip * 8, 0x10000 + ip * 4096, False, ip)
        assert len(berti._table) <= BertiPrefetcher.MAX_IPS


class TestIpStride:
    def test_detects_constant_stride(self):
        prefetcher = IpStridePrefetcher(degree=2)
        requests = _drive_stride(prefetcher, stride=128, count=10)
        assert requests
        last = requests[-2:]
        assert last[0].address % 128 == 0
        assert last[1].address - last[0].address == 128

    def test_ignores_irregular(self):
        import random
        rng = random.Random(1)
        prefetcher = IpStridePrefetcher()
        requests = []
        for i in range(50):
            requests.extend(prefetcher.on_access(
                0x400, rng.randrange(1 << 20) * 64, False, i))
        assert len(requests) < 20

    def test_stride_change_retrains(self):
        prefetcher = IpStridePrefetcher(degree=1)
        _drive_stride(prefetcher, stride=64, count=10)
        requests = _drive_stride(prefetcher, start=0x900000, stride=256,
                                 count=10)
        assert requests[-1].address % 256 == 0


class TestStreamer:
    def test_follows_ascending_stream(self):
        prefetcher = StreamPrefetcher(degree=2)
        requests = _drive_stride(prefetcher, count=10)
        assert requests
        assert all(r.address > 0x10000 for r in requests)

    def test_follows_descending_stream(self):
        prefetcher = StreamPrefetcher(degree=2)
        requests = []
        for i in range(10):
            requests.extend(prefetcher.on_access(
                0x400, 0x20000 - i * 64, False, i))
        assert requests
        assert all(r.address < 0x20000 for r in requests)

    def test_direction_flip_resets_confidence(self):
        prefetcher = StreamPrefetcher(degree=2)
        for i in range(6):
            prefetcher.on_access(0x400, 0x10000 + i * 64, False, i)
        flipped = prefetcher.on_access(0x400, 0x10000, False, 10)
        assert flipped == []


class TestIpcp:
    def test_constant_stride_class_fills_l1(self):
        prefetcher = IpcpPrefetcher(degree=2)
        requests = _drive_stride(prefetcher, count=12)
        assert requests
        assert any(r.fill_level == 1 for r in requests)

    def test_global_stream_detection(self):
        prefetcher = IpcpPrefetcher(degree=2)
        requests = []
        # Two IPs jointly walking a dense region (GS class): neither has a
        # stable per-IP stride (each sees delta 2), but the region fills.
        for i in range(16):
            ip = 0x400 + (i % 2) * 8
            requests.extend(prefetcher.on_access(
                ip, 0x10000 + i * 64, False, i))
        assert requests

    def test_cplx_recurring_delta_pattern(self):
        prefetcher = IpcpPrefetcher(degree=2)
        pattern = [1, 3, 1, 3, 1, 3, 1, 3, 1, 3, 1, 3]
        line = 0x1000
        requests = []
        for i, delta in enumerate(pattern * 4):
            line += delta
            requests.extend(prefetcher.on_access(
                0x500, line * 64, False, i))
        assert requests


class TestSppPpf:
    def test_learns_page_local_deltas(self):
        prefetcher = SppPpfPrefetcher(degree=4)
        requests = []
        for page in range(6):
            base = page << 12
            for offset in range(0, 32, 2):
                requests.extend(prefetcher.on_access(
                    0x400, base + offset * 64, False, page * 100 + offset))
        assert requests
        assert all(r.fill_level == 2 for r in requests)

    def test_stops_at_page_boundary(self):
        prefetcher = SppPpfPrefetcher(degree=16)
        requests = []
        for page in range(4):
            base = page << 12
            for offset in range(0, 64, 8):
                requests.extend(prefetcher.on_access(
                    0x400, base + offset * 64, False, page * 100 + offset))
        for request in requests:
            # Candidates never escape their trigger page.
            assert (request.address >> 12) in range(5)

    def test_feedback_trains_perceptron_against_junk(self):
        prefetcher = SppPpfPrefetcher(degree=4)
        # Teach a pattern, then report every prefetch useless.
        for page in range(3):
            base = page << 12
            for offset in range(0, 32, 2):
                for request in prefetcher.on_access(
                        0x400, base + offset * 64, False, offset):
                    prefetcher.on_prefetch_feedback(request.address, False)
        before = len(prefetcher.on_access(0x400, (4 << 12), False, 999))
        # After heavy negative training the filter suppresses candidates.
        suppressed = len(prefetcher.on_access(0x400, (4 << 12) + 128, False,
                                              1000))
        assert suppressed <= max(1, before)


class TestBingo:
    def test_replays_recorded_footprint(self):
        prefetcher = BingoPrefetcher(degree=8)
        offsets = [0, 2, 5, 9]
        # Record the footprint across enough regions to retire generations.
        for region in range(80):
            base = region << 11
            for offset in offsets:
                prefetcher.on_access(0x400, base + offset * 64, False,
                                     region * 10)
        # A fresh region trigger with the same PC+offset replays it.
        requests = prefetcher.on_access(0x400, (500 << 11), False, 10_000)
        predicted_offsets = {(r.address >> 6) & 0x1F for r in requests}
        assert predicted_offsets <= set(offsets)
        assert predicted_offsets

    def test_single_line_regions_teach_nothing(self):
        prefetcher = BingoPrefetcher()
        for region in range(100):
            prefetcher.on_access(0x400, region << 11, False, region)
        requests = prefetcher.on_access(0x400, (900 << 11) + 64, False, 5000)
        assert requests == []


class TestSelectedPrefetcher:
    """The bandit's arm multiplexer standing in the L1 slot."""

    def _selected(self):
        from repro.prefetch.learned import SelectedPrefetcher
        return SelectedPrefetcher(("none", "stride"), degree=2)

    def test_activate_is_bounds_checked_and_counts_switches(self):
        selected = self._selected()
        with pytest.raises(ValueError, match="arm"):
            selected.activate(2)
        selected.activate(1)
        selected.activate(1)  # re-activating the active arm is free
        assert selected.active == 1
        assert selected.switches == 1

    def test_only_the_active_arm_sees_traffic(self):
        selected = self._selected()
        selected.activate(1)
        # Train the stride arm through the multiplexer...
        for i in range(4):
            selected.on_access(0x400, 0x1000 + i * 256, False, i)
        assert selected.on_access(0x400, 0x1000 + 4 * 256, False, 4)
        # ...then point back at "none": candidates stop immediately.
        selected.activate(0)
        assert selected.on_access(0x400, 0x1000 + 5 * 256, False, 5) == []


class TestFilteredSchemeCounters:
    """Filtered schemes must expose their structure-activity counters.

    The energy layer prices ``core{N}.chain`` structure accesses
    (CLIP's CAM lanes, the policy tables), so a filtered run whose
    counters stay absent or zero would silently read as free."""

    def _chain_counters(self, scheme: str):
        from repro.experiments.sweep import RunSpec, Scheme
        from repro.sim.system import run_system
        spec = RunSpec(scheme=Scheme.parse(scheme),
                       mix=("605.mcf_s-1536B",), channels=1, num_cores=1,
                       sim_instructions=2_500)
        result = run_system(spec.config(), list(spec.mix))
        return result.counters["core0.chain"]

    def test_clip_counters_present_and_active(self):
        chain = self._chain_counters("berti+clip")
        for counter in ("clip_filter_accesses", "clip_predictor_accesses",
                        "clip_utility_cam_accesses"):
            assert chain[counter] > 0, counter
        # Candidates flowed through the chain (CLIP may drop them all
        # on a short bandwidth-starved run; the structures still paid).
        assert chain["pf_issued"] + chain["pf_dropped_filter"] > 0

    def test_bandit_counters_present_and_active(self):
        chain = self._chain_counters("bandit")
        assert chain["policy_epochs"] > 0
        assert chain["policy_updates"] > 0
        assert chain["policy_table_accesses"] > 0
        assert chain["policy_switches"] >= 0  # key must exist either way

    def test_perceptron_counters_present_and_active(self):
        chain = self._chain_counters("berti+perceptron")
        assert chain["policy_decisions"] > 0
        assert chain["policy_table_accesses"] > 0
        assert chain["policy_admits"] + chain["policy_drops"] \
            == chain["policy_decisions"]
        assert chain["pf_dropped_filter"] >= chain["policy_drops"]
