"""Tests for result containers, weighted speedup, energy model, trace IO,
and configuration validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (CacheConfig, ClipConfig, SystemConfig,
                          scaled_config)
from repro.energy import dynamic_energy
from repro.sim.stats import (ClipResult, CoreResult, DramResult,
                             LevelStats, NocResult, PrefetchStats,
                             SimulationResult, weighted_speedup)
from repro.trace.io import load_trace, save_trace
from repro.trace.synthetic import SyntheticWorkload
from repro.trace.workloads import get_workload


def _core(core_id=0, instructions=1000, cycles=2000) -> CoreResult:
    return CoreResult(core_id=core_id, workload="w",
                      instructions=instructions, cycles=cycles, loads=100,
                      stores=10, branches=50, mispredicts=5,
                      head_stall_cycles=100, head_stall_cycles_miss=50,
                      critical_load_instances=20,
                      load_instances_beyond_l1=80)


def _result(ipcs) -> SimulationResult:
    result = SimulationResult(config_label="t")
    for i, ipc in enumerate(ipcs):
        result.cores.append(_core(i, instructions=1000,
                                  cycles=int(1000 / ipc)))
    return result


class TestWeightedSpeedup:
    def test_identity(self):
        a = _result([0.5, 0.5])
        assert weighted_speedup(a, a) == pytest.approx(1.0)

    def test_doubling(self):
        fast = _result([1.0, 1.0])
        slow = _result([0.5, 0.5])
        assert weighted_speedup(fast, slow) == pytest.approx(2.0)

    def test_mixed(self):
        a = _result([1.0, 0.5])
        b = _result([0.5, 0.5])
        assert weighted_speedup(a, b) == pytest.approx(1.5)

    def test_core_count_mismatch(self):
        with pytest.raises(ValueError):
            weighted_speedup(_result([1.0]), _result([1.0, 1.0]))

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_speedup(SimulationResult("a"), SimulationResult("b"))


class TestStatsProperties:
    def test_prefetch_accuracy_guards(self):
        stats = PrefetchStats()
        assert stats.accuracy == 0.0
        stats.issued = 10
        stats.useful = 8
        assert stats.accuracy == 0.8
        stats.late = 4
        assert stats.lateness == 0.5

    def test_traffic_reduction(self):
        stats = PrefetchStats(candidates=100, issued=40)
        assert stats.traffic_reduction == pytest.approx(0.6)

    def test_level_coverage(self):
        level = LevelStats("L1D", demand_misses=60, useful_prefetches=40)
        assert level.miss_coverage == pytest.approx(0.4)

    def test_level_latency(self):
        level = LevelStats("L1D", miss_latency_sum=500,
                           miss_latency_count=10)
        assert level.average_miss_latency == 50


class TestEnergyModel:
    def _loaded_result(self) -> SimulationResult:
        result = SimulationResult(config_label="e")
        result.levels = {
            "L1D": LevelStats("L1D", demand_accesses=10_000,
                              prefetch_fills=500),
            "L2": LevelStats("L2", demand_accesses=2_000),
            "LLC": LevelStats("LLC", demand_accesses=800),
        }
        result.dram = DramResult(reads=500, writes=100, row_misses=200)
        result.noc = NocResult(packets=600, flits=4000)
        return result

    def test_dram_dominates(self):
        breakdown = dynamic_energy(self._loaded_result())
        assert breakdown.components_mj["DRAM"] == max(
            breakdown.components_mj.values())

    def test_clip_energy_is_small(self):
        base = dynamic_energy(self._loaded_result())
        with_clip = self._loaded_result()
        with_clip.clip = ClipResult(filter_accesses=10_000,
                                    predictor_accesses=10_000,
                                    utility_cam_accesses=5_000)
        overhead = dynamic_energy(with_clip).total_mj - base.total_mj
        assert 0 < overhead < 0.05 * base.total_mj

    def test_clip_events_argument_is_a_deprecated_noop(self):
        result = self._loaded_result()
        base = dynamic_energy(result)
        with pytest.warns(DeprecationWarning, match="clip_events"):
            legacy = dynamic_energy(result, clip_events=10_000)
        # Ignored, not applied: CLIP activity comes from the result's
        # own counters, and this result has none.
        assert legacy.total_mj == base.total_mj
        assert "CLIP" not in legacy.components_mj

    def test_counter_driven_when_counters_present(self):
        result = self._loaded_result()
        legacy = dynamic_energy(result)
        result.counters = {
            "core0.l1d": {"demand_accesses": 10_000, "prefetch_fills": 500},
            "core0.l2": {"demand_accesses": 2_000, "prefetch_fills": 0},
            "llc.slice0": {"demand_accesses": 800, "prefetch_fills": 0},
            # Exact flit-hops, not flits x LEGACY_MEAN_HOPS.
            "noc": {"flit_hops": 20_000},
            "dram.ch0": {"reads": 500, "writes": 100, "activates": 200},
        }
        counter = dynamic_energy(result)
        # SRAM and DRAM components agree with the legacy estimate...
        for name in ("L1D", "L2", "LLC", "DRAM"):
            assert counter.components_mj[name] == pytest.approx(
                legacy.components_mj[name])
        # ...but the NoC uses the measured hop count (20k != 4000 x 3).
        assert counter.components_mj["NoC"] != pytest.approx(
            legacy.components_mj["NoC"])

    def test_total_is_sum(self):
        breakdown = dynamic_energy(self._loaded_result())
        assert breakdown.total_mj == pytest.approx(
            sum(breakdown.components_mj.values()))

    def test_fewer_dram_accesses_less_energy(self):
        heavy = self._loaded_result()
        light = self._loaded_result()
        light.dram.reads //= 2
        assert dynamic_energy(light).total_mj \
            < dynamic_energy(heavy).total_mj


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        trace = SyntheticWorkload(
            get_workload("605.mcf_s-1536B")).generate(400, core_id=1)
        path = tmp_path / "trace.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == trace

    def test_refuses_empty(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "x.npz", [])


class TestConfig:
    def test_cache_geometry_validation(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig(size_kib=48, ways=13)

    def test_num_sets(self):
        config = CacheConfig(size_kib=48, ways=12)
        assert config.num_sets == 64
        assert config.num_lines == 768

    def test_mesh_dim(self):
        assert SystemConfig(num_cores=64).mesh_dim == 8
        assert SystemConfig(num_cores=8).mesh_dim == 3
        assert SystemConfig(num_cores=9).mesh_dim == 3

    def test_validate_rejects_bad_widths(self):
        config = SystemConfig()
        config.core = dataclasses.replace(config.core, retire_width=8,
                                          issue_width=4)
        with pytest.raises(ValueError, match="retire width"):
            config.validate()

    def test_scaled_config_preserves_table3_ratios(self):
        config = scaled_config(num_cores=16, channels=2)
        assert config.num_cores == 16
        assert config.dram.channels == 2
        # Table 3 microarchitectural parameters survive scaling.
        assert config.core.rob_entries == 512
        assert config.core.issue_width == 6
        assert config.dram.trp_cycles == 50

    def test_clip_scaled(self):
        clip = ClipConfig().scaled(2.0)
        assert clip.filter_sets == 64
        assert clip.predictor_sets == 256

    def test_replace_returns_new(self):
        config = SystemConfig()
        other = config.replace(num_cores=8)
        assert other.num_cores == 8 and config.num_cores == 64
