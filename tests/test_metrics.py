"""Tests for the derived-metrics helpers."""

from __future__ import annotations

import pytest

from repro import run_system, scaled_config
from repro.sim.metrics import (aggregate_ipc, compare_schemes,
                               harmonic_mean_ipc, mpki,
                               prefetch_traffic_share, summarize)
from repro.sim.stats import (CoreResult, DramResult, LevelStats,
                             SimulationResult)
from repro.trace import homogeneous_mix


def _result(ipcs, l1_misses=100) -> SimulationResult:
    result = SimulationResult(config_label="m")
    for i, ipc in enumerate(ipcs):
        result.cores.append(CoreResult(
            core_id=i, workload="w", instructions=1000,
            cycles=int(1000 / ipc), loads=250, stores=20, branches=100,
            mispredicts=10, head_stall_cycles=0, head_stall_cycles_miss=0,
            critical_load_instances=0, load_instances_beyond_l1=0))
    result.levels = {
        "L1D": LevelStats("L1D", demand_misses=l1_misses),
        "L2": LevelStats("L2", demand_misses=l1_misses // 2),
        "LLC": LevelStats("LLC", demand_misses=l1_misses // 4),
    }
    result.dram = DramResult(reads=80, prefetch_reads=20)
    return result


class TestScalarMetrics:
    def test_aggregate_ipc(self):
        assert aggregate_ipc(_result([0.5, 0.5])) == pytest.approx(1.0)

    def test_harmonic_mean_punishes_imbalance(self):
        balanced = harmonic_mean_ipc(_result([0.5, 0.5]))
        skewed = harmonic_mean_ipc(_result([0.9, 0.1]))
        assert skewed < balanced

    def test_mpki(self):
        result = _result([1.0], l1_misses=50)
        assert mpki(result, "L1D") == pytest.approx(50.0)
        assert mpki(result, "LLC") == pytest.approx(12.0)

    def test_mpki_unknown_level(self):
        with pytest.raises(ValueError, match="unknown cache level"):
            mpki(_result([1.0]), "L9")

    def test_traffic_share(self):
        assert prefetch_traffic_share(_result([1.0])) == pytest.approx(0.25)

    def test_summarize_keys(self):
        summary = summarize(_result([1.0]))
        for key in ("aggregate_ipc", "l1_mpki", "prefetch_accuracy",
                    "dram_utilization"):
            assert key in summary


class TestCompareSchemes:
    def test_rows_and_speedups(self):
        results = {"none": _result([0.5, 0.5]), "fast": _result([1.0, 1.0])}
        rows = compare_schemes(results, baseline="none")
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["none"]["weighted_speedup"] == pytest.approx(1.0)
        assert by_scheme["fast"]["weighted_speedup"] == pytest.approx(2.0)

    def test_missing_baseline(self):
        with pytest.raises(ValueError, match="baseline"):
            compare_schemes({"a": _result([1.0])}, baseline="none")

    def test_on_real_simulation(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=1_500)
        result = run_system(config, homogeneous_mix("605.mcf_s-1536B", 2))
        summary = summarize(result)
        assert summary["l1_mpki"] > 0
        assert 0 <= summary["dram_utilization"] <= 1
