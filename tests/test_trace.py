"""Tests for the trace substrate: records, generators, workloads, mixes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (CLOUDSUITE_WORKLOADS, CVP_WORKLOADS, GAP_WORKLOADS,
                         SPEC_HOMOGENEOUS_MIXES, Op, StreamSpec,
                         SyntheticWorkload, TraceRecord, WorkloadSpec,
                         get_workload, heterogeneous_mixes, homogeneous_mix,
                         workload_names)
from repro.trace.record import NO_REG, validate_trace


class TestTraceRecord:
    def test_memory_classification(self):
        load = TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)
        alu = TraceRecord(0x404, Op.ALU, dst=2, srcs=(1,))
        assert load.is_memory
        assert not alu.is_memory

    def test_equality_and_hash(self):
        a = TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)
        b = TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1)
        c = TraceRecord(0x400, Op.LOAD, address=0x2000, dst=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_validate_rejects_memory_without_address(self):
        with pytest.raises(ValueError, match="without address"):
            validate_trace([TraceRecord(0x400, Op.LOAD, address=0)])

    def test_validate_rejects_branch_with_destination(self):
        with pytest.raises(ValueError, match="branch with destination"):
            validate_trace([TraceRecord(0x400, Op.BRANCH, dst=3)])

    def test_validate_rejects_use_before_def(self):
        records = [TraceRecord(0x400, Op.ALU, dst=1, srcs=(2,))]
        with pytest.raises(ValueError, match="never produced"):
            validate_trace(records)

    def test_validate_accepts_wellformed(self):
        records = [
            TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1),
            TraceRecord(0x404, Op.ALU, dst=2, srcs=(1,)),
            TraceRecord(0x408, Op.BRANCH, taken=True, srcs=(2,)),
            TraceRecord(0x40C, Op.STORE, address=0x1040, srcs=(1,)),
        ]
        validate_trace(records)


class TestStreamSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            StreamSpec(kind="zigzag")

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            StreamSpec(kind="stride", weight=0)

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError, match="footprint"):
            StreamSpec(kind="stride", footprint_kib=0)


class TestWorkloadSpec:
    def test_requires_streams(self):
        with pytest.raises(ValueError, match="no streams"):
            WorkloadSpec(name="empty", streams=[])

    def test_requires_positive_phases(self):
        with pytest.raises(ValueError, match="phases"):
            WorkloadSpec(name="w",
                         streams=[StreamSpec(kind="stride")], phases=0)


class TestSyntheticWorkload:
    def _spec(self) -> WorkloadSpec:
        return WorkloadSpec(name="unit", streams=[
            StreamSpec(kind="stride", weight=1.0, footprint_kib=64),
            StreamSpec(kind="pointer", weight=1.0, footprint_kib=1024),
            StreamSpec(kind="hotcold", weight=1.0, footprint_kib=1024),
            StreamSpec(kind="spatial", weight=1.0, footprint_kib=64),
            StreamSpec(kind="stream_store", weight=1.0, footprint_kib=64),
            StreamSpec(kind="random", weight=1.0, footprint_kib=64),
        ])

    def test_deterministic(self):
        spec = self._spec()
        a = SyntheticWorkload(spec).generate(500, core_id=3)
        b = SyntheticWorkload(spec).generate(500, core_id=3)
        assert a == b

    def test_cores_differ(self):
        spec = self._spec()
        a = SyntheticWorkload(spec).generate(500, core_id=0)
        b = SyntheticWorkload(spec).generate(500, core_id=1)
        assert a != b

    def test_exact_length(self):
        trace = SyntheticWorkload(self._spec()).generate(777)
        assert len(trace) == 777

    def test_wellformed(self):
        trace = SyntheticWorkload(self._spec()).generate(2000)
        validate_trace(trace)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError, match="length"):
            SyntheticWorkload(self._spec()).generate(0)

    def test_contains_all_op_kinds(self):
        trace = SyntheticWorkload(self._spec()).generate(2000)
        kinds = {record.op for record in trace}
        assert kinds == {Op.LOAD, Op.STORE, Op.BRANCH, Op.ALU}

    def test_pointer_chase_serialises(self):
        """Pointer-stream loads must consume the prior chase register."""
        spec = WorkloadSpec(name="chase", streams=[
            StreamSpec(kind="pointer", weight=1.0, footprint_kib=1024),
        ], alu_filler_weight=0.001)
        trace = SyntheticWorkload(spec).generate(300)
        loads = [r for r in trace if r.op == Op.LOAD]
        dependent = [r for r in loads if r.srcs]
        assert len(dependent) >= len(loads) - 1
        for record in dependent:
            assert record.srcs == (record.dst,)

    def test_hotcold_branch_precedes_load(self):
        spec = WorkloadSpec(name="hc", streams=[
            StreamSpec(kind="hotcold", weight=1.0, footprint_kib=4096,
                       hot_footprint_kib=16),
        ], alu_filler_weight=0.001)
        trace = SyntheticWorkload(spec).generate(300)
        for i, record in enumerate(trace[:-1]):
            if record.op == Op.BRANCH and record.ip & 0xF == 0x4:
                assert trace[i + 1].op == Op.LOAD

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_any_length_is_wellformed(self, length):
        trace = SyntheticWorkload(self._spec()).generate(length)
        assert len(trace) == length
        validate_trace(trace)

    def test_phases_rotate_weights(self):
        spec = WorkloadSpec(name="ph", streams=[
            StreamSpec(kind="stride", weight=10.0, footprint_kib=64),
            StreamSpec(kind="random", weight=0.1, footprint_kib=64),
        ], phases=2, phase_length=500, alu_filler_weight=0.1)
        trace = SyntheticWorkload(spec).generate(1500)
        # In phase 1 the random stream dominates; its loads have different
        # base IPs than the stride stream's.
        first = {r.ip for r in trace[:400] if r.op == Op.LOAD}
        second = {r.ip for r in trace[600:900] if r.op == Op.LOAD}
        assert first != second


class TestWorkloadRegistry:
    def test_counts_match_paper(self):
        assert len(SPEC_HOMOGENEOUS_MIXES) == 45
        assert len(GAP_WORKLOADS) == 12
        assert len(CLOUDSUITE_WORKLOADS) == 5
        assert len(CVP_WORKLOADS) == 5

    def test_every_name_resolves(self):
        for name in workload_names():
            spec = get_workload(name)
            assert spec.streams

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("999.nonesuch")

    def test_simpoints_of_same_benchmark_differ(self):
        a = get_workload("605.mcf_s-1536B")
        b = get_workload("605.mcf_s-472B")
        assert a.streams[2].footprint_kib != b.streams[2].footprint_kib

    def test_mcf_has_pointer_stream(self):
        spec = get_workload("605.mcf_s-1536B")
        assert any(s.kind == "pointer" for s in spec.streams)

    def test_lbm_has_store_stream(self):
        spec = get_workload("619.lbm_s-2676B")
        assert any(s.kind == "stream_store" for s in spec.streams)


class TestMixes:
    def test_homogeneous(self):
        mix = homogeneous_mix("605.mcf_s-1536B", 8)
        assert mix == ["605.mcf_s-1536B"] * 8

    def test_homogeneous_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            homogeneous_mix("605.mcf_s-1536B", 0)

    def test_heterogeneous_deterministic(self):
        a = heterogeneous_mixes(5, 8, seed=7)
        b = heterogeneous_mixes(5, 8, seed=7)
        assert a == b

    def test_heterogeneous_shape(self):
        mixes = heterogeneous_mixes(10, 16)
        assert len(mixes) == 10
        assert all(len(mix) == 16 for mix in mixes)

    def test_heterogeneous_draws_from_spec_and_gap(self):
        mixes = heterogeneous_mixes(50, 16, seed=1)
        names = {name for mix in mixes for name in mix}
        assert names & set(SPEC_HOMOGENEOUS_MIXES)
        assert names & set(GAP_WORKLOADS)

    def test_heterogeneous_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="empty"):
            heterogeneous_mixes(1, 4, pool=[])
