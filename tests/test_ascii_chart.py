"""Tests for the terminal bar-chart renderer."""

from __future__ import annotations

from repro.experiments.ascii_chart import bar_chart, grouped_chart


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == ""

    def test_proportional_lengths(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=40)
        line_a, line_b = text.splitlines()
        assert line_b.count("█") > line_a.count("█")

    def test_title_first_line(self):
        text = bar_chart({"a": 1.0}, title="hello")
        assert text.splitlines()[0] == "hello"

    def test_values_printed(self):
        text = bar_chart({"scheme": 0.832})
        assert "0.832" in text

    def test_reference_marker_beyond_bars(self):
        text = bar_chart({"a": 0.5}, reference=1.0, width=20)
        assert "|" in text

    def test_zero_values_no_crash(self):
        text = bar_chart({"a": 0.0, "b": 0.0}, reference=1.0)
        assert "a" in text and "b" in text

    def test_labels_aligned(self):
        text = bar_chart({"x": 1.0, "longer": 1.0})
        lines = text.splitlines()
        assert lines[0].index("1.000") == lines[1].index("1.000")


class TestGroupedChart:
    def test_one_block_per_group(self):
        text = grouped_chart({"s1": [1.0, 2.0], "s2": [2.0, 1.0]},
                             ["ch=1", "ch=2"], title="t")
        assert text.count("[ch=") == 2
        assert text.splitlines()[0] == "t"

    def test_group_values_selected_by_index(self):
        text = grouped_chart({"s": [1.0, 3.0]}, ["g0", "g1"])
        blocks = text.split("[g1]")
        assert "1.000" in blocks[0]
        assert "3.000" in blocks[1]
