"""Direct unit tests for the repro.sim.hierarchy components.

The equivalence suite (test_hierarchy_equivalence.py) proves the
decomposed hierarchy reproduces the monolith bit for bit; these tests
pin each component's own contract -- Port back-pressure and FIFO
replay, typed messages, NoC delivery scheduling, and the per-layer
request handling -- against small, hand-built fixtures.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import scaled_config
from repro.cache.mshr import MshrFile
from repro.cpu.core_model import ServiceLevel
from repro.dram.controller import DramSystem
from repro.noc.mesh import MeshNoc
from repro.prefetch.base import PrefetchRequest
from repro.sim.engine import Engine
from repro.sim.hierarchy import (Hierarchy, MemoryRequest, MemoryResponse,
                                 NocLink, Port, privatize)
from repro.sim.stats import PrefetchStats


def _config(cores=2, **kw):
    config = scaled_config(num_cores=cores, channels=1,
                           sim_instructions=500)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name="none")
    for key, value in kw.items():
        setattr(config, key, value)
    return config


def _hierarchy(cores=2, **kw):
    config = _config(cores=cores, **kw)
    engine = Engine()
    noc = MeshNoc(config.mesh_dim, config.noc)
    dram = DramSystem(config.dram, engine, config.l1d.line_size)
    hierarchy = Hierarchy(config, engine, noc, dram, PrefetchStats(),
                          trace=None)
    return hierarchy, engine


# ----------------------------------------------------------------------
# Port: scheduling + MSHR back-pressure (satellite: replay ordering)
# ----------------------------------------------------------------------

class TestPort:
    def test_schedule_resolves_engine_dynamically(self):
        # The sanitizer installs its shims as *instance* attributes after
        # wiring; a port holding a bound method would bypass them.
        engine = Engine()
        seen = []
        engine.schedule = lambda cycle, cb: seen.append(cycle)
        Port(engine).schedule(7, lambda: None)
        assert seen == [7]

    def test_now_tracks_engine(self):
        engine = Engine()
        port = Port(engine)
        engine.now = 42
        assert port.now == 42

    def test_mshr_operations_require_mshr(self):
        port = Port(Engine())
        with pytest.raises(TypeError, match="no MSHR"):
            port.full
        with pytest.raises(TypeError, match="no MSHR"):
            port.defer(lambda: None)

    def test_replay_is_fifo(self):
        port = Port(Engine(), MshrFile(1))
        port.allocate(0xA, False, False, 0, 0)
        order = []
        for tag in (1, 2, 3):
            port.defer(lambda tag=tag: order.append(tag))
        assert port.full and order == []
        port.release(0xA)
        port.replay()
        assert order == [1, 2, 3]

    def test_replay_no_starvation_when_mshr_refills(self):
        # Each replayed request immediately re-fills the single register:
        # replay must stop without dropping or reordering the rest, and
        # later releases must keep draining in FIFO order.
        port = Port(Engine(), MshrFile(1))
        order = []

        def retry(line):
            if port.full:
                port.defer(lambda: retry(line))
                return
            port.allocate(line, False, False, 0, 0)
            order.append(line)

        port.allocate(0xA, False, False, 0, 0)
        for line in (1, 2, 3):
            retry(line)
        assert order == []
        port.release(0xA)
        port.replay()
        assert order == [1]  # register refilled; 2 and 3 keep their place
        for expect in ((2,), (2, 3)):
            port.release(order[-1])
            port.replay()
            assert tuple(order[1:]) == expect

    def test_replayed_requests_keep_queue_position(self):
        # A replayed thunk that must defer again goes to the *back*; the
        # queue itself is never reordered while full.
        port = Port(Engine(), MshrFile(1))
        port.allocate(0xA, False, False, 0, 0)
        popped = []
        port.defer(lambda: popped.append("first"))
        port.defer(lambda: popped.append("second"))
        port.replay()  # still full: nothing pops
        assert popped == []
        assert len(port.mshr.pending) == 2


# ----------------------------------------------------------------------
# Typed messages
# ----------------------------------------------------------------------

class TestMessages:
    def test_privatize_separates_cores(self):
        assert privatize(0, 0x1000) != privatize(1, 0x1000)
        assert privatize(0, 0x1000) == privatize(0, 0x1040 - 0x40)

    def test_priority_rules(self):
        demand = MemoryRequest(line=1, address=0x40, ip=0, core_id=0)
        prefetch = demand._replace(is_prefetch=True)
        critical = prefetch._replace(crit=True)
        assert demand.high_priority
        assert not prefetch.high_priority
        assert critical.high_priority

    def test_messages_are_frozen(self):
        req = MemoryRequest(line=1, address=0x40, ip=0, core_id=0)
        resp = MemoryResponse(line=1, at=10, level=ServiceLevel.L2)
        with pytest.raises(AttributeError):
            req.line = 2
        with pytest.raises(AttributeError):
            resp.at = 11


# ----------------------------------------------------------------------
# NocLink: delivery scheduling
# ----------------------------------------------------------------------

class TestNocLink:
    def _link(self):
        config = _config()
        engine = Engine()
        scheduled = []
        engine.schedule = lambda cycle, cb: scheduled.append((cycle, cb))
        noc = MeshNoc(config.mesh_dim, config.noc)
        return NocLink(noc, Port(engine)), scheduled

    def test_request_schedules_delivery_at_arrival(self):
        link, scheduled = self._link()
        delivered = []
        link.request(0, 1, 5, True, lambda: delivered.append(True))
        assert len(scheduled) == 1
        cycle, cb = scheduled[0]
        assert cycle >= 5
        cb()
        assert delivered == [True]

    def test_data_without_deliver_is_fire_and_forget(self):
        link, scheduled = self._link()
        arrival = link.data(0, 1, 5, False)
        assert arrival >= 5
        assert scheduled == []


# ----------------------------------------------------------------------
# L1Node
# ----------------------------------------------------------------------

class TestL1Node:
    def test_hit_calls_back_after_l1_latency(self):
        hierarchy, engine = _hierarchy()
        l1 = hierarchy.nodes[0].l1
        l1.cache.fill(privatize(0, 0x4000), 0, 0)
        results = []
        hierarchy.issue_load(0, 0x4000, ip=0x11, cycle=0,
                             callback=lambda t, lvl: results.append((t, lvl)))
        engine.run([])
        assert results == [(l1.latency, ServiceLevel.L1)]

    def test_cold_miss_travels_to_dram_and_back(self):
        hierarchy, engine = _hierarchy()
        results = []
        hierarchy.issue_load(0, 0x4000, ip=0x11, cycle=0,
                             callback=lambda t, lvl: results.append((t, lvl)))
        engine.run([])
        assert [lvl for _, lvl in results] == [ServiceLevel.DRAM]
        reads = sum(ch.stats.reads
                    for ch in hierarchy.dram_port.dram.channels)
        assert reads == 1
        assert l1_resident(hierarchy, 0, 0x4000)

    def test_full_l1_mshr_defers_demand_fifo(self):
        hierarchy, engine = _hierarchy()
        node = hierarchy.nodes[0]
        port = node.l1.port
        for i in range(port.mshr.capacity):
            port.allocate(0x9000 + i, False, False, 0, 0)
        results = []
        hierarchy.issue_load(0, 0x4000, ip=0x11, cycle=0,
                             callback=lambda t, lvl: results.append(lvl))
        assert len(port.mshr.pending) == 1 and results == []
        for i in range(port.mshr.capacity):
            port.release(0x9000 + i)
        port.replay()
        engine.run([])
        assert results == [ServiceLevel.DRAM]


def l1_resident(hierarchy, core_id, address):
    return hierarchy.nodes[core_id].l1.cache.probe(
        privatize(core_id, address))


# ----------------------------------------------------------------------
# L2Node
# ----------------------------------------------------------------------

class TestL2Node:
    def test_unattached_prefetch_dropped_and_uncounted_when_full(self):
        hierarchy, _ = _hierarchy()
        node = hierarchy.nodes[0]
        l2 = node.l2
        for i in range(l2.port.mshr.capacity):
            l2.port.allocate(0x9000 + i, False, False, 0, 0)
        node.pf_issued = 1
        hierarchy.stats.issued = 1
        req = MemoryRequest(line=privatize(0, 0x4000), address=0x4000,
                            ip=0x11, core_id=0, is_prefetch=True)
        l2.request(req, 0, respond=None)
        assert node.pf_dropped_mshr == 1
        assert hierarchy.stats.dropped_mshr == 1
        # Un-counted: it never entered the hierarchy.
        assert node.pf_issued == 0
        assert hierarchy.stats.issued == 0

    def test_hit_responds_after_l2_latency(self):
        hierarchy, engine = _hierarchy()
        l2 = hierarchy.nodes[0].l2
        line = privatize(0, 0x4000)
        l2.cache.fill(line, 0, 0)
        responses = []
        req = MemoryRequest(line=line, address=0x4000, ip=0x11, core_id=0)
        l2.request(req, 0, respond=responses.append)
        engine.run([])
        assert responses == [MemoryResponse(line, l2.latency,
                                            ServiceLevel.L2)]

    def test_accept_writeback_installs_dirty(self):
        hierarchy, _ = _hierarchy()
        l2 = hierarchy.nodes[0].l2
        line = privatize(0, 0x4000)
        l2.accept_writeback(line, 3)
        assert l2.cache.probe(line)


# ----------------------------------------------------------------------
# LlcSlice
# ----------------------------------------------------------------------

class _WriteRecorder:
    def __init__(self):
        self.writes = []

    def write(self, line, t):
        self.writes.append(line)


class TestLlcSlice:
    def test_dirty_victim_write_reconstructs_global_line(self):
        hierarchy, _ = _hierarchy()
        slice_ = hierarchy.slices[0]
        recorder = _WriteRecorder()
        slice_.dram = recorder
        sets, ways = slice_.cache.num_sets, slice_.cache.ways
        # Global lines for slice 0 whose slice-local addresses collide in
        # set 0: local = k * sets, global = local * num_slices.
        lines = [k * sets * hierarchy.num_slices for k in range(ways + 1)]
        for t, line in enumerate(lines):
            assert hierarchy.slice_of(line) == 0
            slice_.fill(line, t, pc=0, prefetch=False, dirty=True)
        assert len(recorder.writes) == 1
        assert recorder.writes[0] in lines  # global address, not local

    def test_hit_returns_data_to_origin_l2(self):
        hierarchy, engine = _hierarchy()
        origin = hierarchy.nodes[0]
        line = privatize(0, 0x4000)
        slice_ = hierarchy.slices[hierarchy.slice_of(line)]
        slice_.fill(line, 0, pc=0, prefetch=False)
        # Park an L2 MSHR entry so the returned data has a home.
        mshr = origin.l2.port.allocate(line, False, False, 0x11, 0)
        responses = []
        mshr.waiters.append(responses.append)
        req = MemoryRequest(line=line, address=0x4000, ip=0x11, core_id=0)
        slice_.lookup(req, origin)
        engine.run([])
        assert [r.level for r in responses] == [ServiceLevel.LLC]
        assert origin.l2.cache.probe(line)


# ----------------------------------------------------------------------
# PrefetchFilterChain
# ----------------------------------------------------------------------

class _AlwaysCold:
    def predicts_critical_ip(self, ip):
        return False


class TestFilterChain:
    def test_enabled_gate_drops_candidates(self):
        hierarchy, _ = _hierarchy()
        node = hierarchy.nodes[0]
        chain = node.chain
        chain.crit_gate = _AlwaysCold()
        chain.gate_enabled = True
        chain.handle([PrefetchRequest(0x4000, 1, 0x11)], cycle=0)
        assert node.pf_dropped_filter == 1
        assert hierarchy.stats.dropped_filter == 1
        assert hierarchy.stats.candidates == 1
        assert hierarchy.stats.issued == 0

    def test_ungated_candidates_reach_issuing_layer(self):
        hierarchy, _ = _hierarchy()
        node = hierarchy.nodes[0]
        issued = []
        node.chain.issue = lambda req, cycle, crit: issued.append(
            (req.address, crit))
        node.chain.handle([PrefetchRequest(0x4000, 1, 0x11)], cycle=0)
        assert issued == [(0x4000, False)]


# ----------------------------------------------------------------------
# CoreNode flat views
# ----------------------------------------------------------------------

class TestCoreNode:
    def test_flat_views_alias_layer_state(self):
        hierarchy, _ = _hierarchy()
        node = hierarchy.nodes[0]
        assert node.l1d is node.l1.cache
        assert node.l1_mshr is node.l1.port.mshr
        assert node.l2_cache is node.l2.cache
        assert node.l2_mshr is node.l2.port.mshr
        assert node.l1_pf is node.l1.prefetcher
        assert node.l2_pf is node.l2.prefetcher
        assert node.dspatch is node.chain.dspatch
        assert node.throttler is node.chain.throttler
