"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURES, TABLES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "605.mcf_s-1536B"
        assert args.prefetcher == "berti"
        assert not args.clip

    def test_figure_choices_cover_all_paper_items(self):
        for fig in range(1, 22):
            if fig in (7, 8):  # design diagrams, not results
                continue
            assert f"fig{fig}" in FIGURES
        assert "table2" in TABLES and "table3" in TABLES

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_rejects_unknown_prefetcher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--prefetcher", "oracle"])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 67  # 45 SPEC + 12 GAP + 5 CloudSuite + 5 CVP

    def test_storage_prints_table2(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Criticality filter" in out
        assert "1.564" in out

    def test_run_minimal(self, capsys):
        code = main(["run", "--cores", "2", "--channels", "1",
                     "--instructions", "1000", "--prefetcher", "none"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate IPC" in out

    def test_run_with_clip_and_baseline(self, capsys):
        code = main(["run", "--cores", "2", "--channels", "1",
                     "--instructions", "1200", "--clip", "--baseline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CLIP" in out
        assert "weighted speedup" in out

    def test_table_figure_command(self, capsys):
        assert main(["figure", "table3"]) == 0
        assert "baseline system parameters" in capsys.readouterr().out

    def test_characterize_command(self, capsys):
        assert main(["characterize", "--workload", "619.lbm_s-2676B",
                     "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "load ratio" in out and "619.lbm" in out

    def test_markdown_report_flag(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["run", "--cores", "2", "--instructions", "1200",
                     "--clip", "--markdown-report", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# ")
        assert "## CLIP" in text

    def test_compare_command(self, capsys):
        assert main(["compare", "--cores", "2", "--instructions", "1200",
                     "--schemes", "none", "berti"]) == 0
        out = capsys.readouterr().out
        assert "weighted_speedup" in out and "| berti |" in out

    def test_run_with_tlb_flag(self, capsys):
        assert main(["run", "--cores", "2", "--instructions", "1000",
                     "--prefetcher", "none", "--tlb"]) == 0
        assert "aggregate IPC" in capsys.readouterr().out


class TestSweepCommand:
    ARGS = ["sweep", "--schemes", "berti", "berti+clip",
            "--workloads", "605.mcf_s-1536B", "--channels", "1", "2",
            "--cores", "2", "--instructions", "1200"]

    def test_cold_then_warm(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.ARGS + cache + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert "weighted speedup" in cold
        assert "simulated 6 point(s)" in cold  # 2x2 grid + 2 baselines
        assert main(self.ARGS + cache) == 0
        warm = capsys.readouterr().out
        assert "simulated 0 point(s)" in warm
        assert "6 of 6 served from the disk cache" in warm
        # Identical numbers whether simulated (in parallel) or replayed.
        table = [line for line in cold.splitlines() if "berti" in line]
        assert table == [line for line in warm.splitlines()
                         if "berti" in line]

    def test_no_cache_always_simulates(self, tmp_path, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        assert "simulated 6 point(s)" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        assert main(self.ARGS + ["--no-cache", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert header.startswith("channels,")
        assert "berti+clip" in header
