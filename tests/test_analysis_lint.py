"""Unit tests for the repro.analysis lint passes.

Every rule gets a positive fixture (a violating snippet it must flag)
and a negative fixture (a compliant snippet it must not flag), plus
tests for the baseline workflow, inline ignores, output formats, and
the repo-level gate itself.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.framework import ProjectIndex, lint_source
from repro.analysis.lint import main as lint_main
from repro.analysis.lint import run_lint
from repro.analysis.rules import (BareAssertRule, FloatCycleArithmeticRule,
                                  LoopVariableCaptureRule,
                                  MutableDefaultArgRule, PortBypassRule,
                                  UnregisteredCounterRule,
                                  UnseededRandomRule, WallClockRule,
                                  default_rules)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source: str, rule, project: ProjectIndex | None = None):
    return lint_source(textwrap.dedent(source), [rule], project=project)


# ----------------------------------------------------------------------
# SIM001 unseeded-rng
# ----------------------------------------------------------------------

class TestUnseededRandom:
    def test_module_level_random_call_fires(self):
        violations = lint("""
            import random

            def jitter():
                return random.randrange(16)
            """, UnseededRandomRule())
        assert [v.rule_id for v in violations] == ["SIM001"]
        assert "randrange" in violations[0].message

    def test_from_import_fires(self):
        violations = lint("""
            from random import choice

            def pick(pool):
                return choice(pool)
            """, UnseededRandomRule())
        assert len(violations) == 1

    def test_unseeded_random_instance_fires(self):
        violations = lint("""
            import random

            rng = random.Random()
            """, UnseededRandomRule())
        assert len(violations) == 1
        assert "seed" in violations[0].message

    def test_numpy_global_rng_fires(self):
        violations = lint("""
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """, UnseededRandomRule())
        assert len(violations) == 1

    def test_seeded_instance_clean(self):
        violations = lint("""
            import random

            def generate(seed):
                rng = random.Random(seed)
                return [rng.randrange(8) for _ in range(4)]
            """, UnseededRandomRule())
        assert violations == []

    def test_seeded_default_rng_clean(self):
        violations = lint("""
            import numpy as np

            def generator(seed):
                return np.random.default_rng(seed)
            """, UnseededRandomRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM002 float-cycle-arithmetic
# ----------------------------------------------------------------------

class TestFloatCycleArithmetic:
    def test_float_literal_on_cycle_fires(self):
        violations = lint("""
            def advance(self, cycle):
                self.ready_at = cycle * 1.5
            """, FloatCycleArithmeticRule())
        assert [v.rule_id for v in violations] == ["SIM002"]

    def test_true_division_fires(self):
        violations = lint("""
            def midpoint(a, b):
                cycle = (a + b) / 2
                return cycle
            """, FloatCycleArithmeticRule())
        assert len(violations) == 1
        assert "division" in violations[0].message

    def test_float_cast_fires(self):
        violations = lint("""
            def worst_case():
                deadline = float("inf")
                return deadline
            """, FloatCycleArithmeticRule())
        assert len(violations) == 1

    def test_integer_math_clean(self):
        violations = lint("""
            def advance(self, cycle, latency):
                self.ready_at = cycle + latency
                done = (cycle + latency) // 2
                return done
            """, FloatCycleArithmeticRule())
        assert violations == []

    def test_next_wake_exempt(self):
        violations = lint("""
            INFINITY = float("inf")

            class Core:
                def _update_next_wake(self, cycle):
                    wake_cycle = float("inf")
                    self.next_wake = min(wake_cycle, cycle + 1.0)

                def park(self):
                    self.next_wake = float("inf")
            """, FloatCycleArithmeticRule())
        assert violations == []

    def test_non_cycle_floats_clean(self):
        violations = lint("""
            def utilization(busy, elapsed):
                ratio = busy / elapsed
                return min(1.0, ratio)
            """, FloatCycleArithmeticRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM003 mutable-default-arg
# ----------------------------------------------------------------------

class TestMutableDefaultArg:
    def test_list_default_fires(self):
        violations = lint("""
            def collect(item, acc=[]):
                acc.append(item)
                return acc
            """, MutableDefaultArgRule())
        assert [v.rule_id for v in violations] == ["SIM003"]

    def test_dict_and_call_defaults_fire(self):
        violations = lint("""
            def route(table={}, queue=list()):
                return table, queue
            """, MutableDefaultArgRule())
        assert len(violations) == 2

    def test_kwonly_default_fires(self):
        violations = lint("""
            def run(*, hooks=[]):
                return hooks
            """, MutableDefaultArgRule())
        assert len(violations) == 1

    def test_none_default_clean(self):
        violations = lint("""
            def collect(item, acc=None):
                if acc is None:
                    acc = []
                acc.append(item)
                return acc
            """, MutableDefaultArgRule())
        assert violations == []

    def test_immutable_defaults_clean(self):
        violations = lint("""
            def f(a=1, b="x", c=(), d=None, e=frozenset()):
                return a, b, c, d, e
            """, MutableDefaultArgRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM004 loop-variable-capture
# ----------------------------------------------------------------------

class TestLoopVariableCapture:
    def test_lambda_in_loop_fires(self):
        violations = lint("""
            def drain(engine, requests):
                for req in requests:
                    engine.schedule(10, lambda: req.complete())
            """, LoopVariableCaptureRule())
        assert [v.rule_id for v in violations] == ["SIM004"]
        assert "req" in violations[0].message

    def test_nested_def_in_loop_fires(self):
        violations = lint("""
            def wire(cores):
                hooks = []
                for core in cores:
                    def hook():
                        return core.tick()
                    hooks.append(hook)
                return hooks
            """, LoopVariableCaptureRule())
        assert len(violations) == 1

    def test_default_bound_lambda_clean(self):
        violations = lint("""
            def drain(engine, requests):
                for req in requests:
                    engine.schedule(10, lambda req=req: req.complete())
            """, LoopVariableCaptureRule())
        assert violations == []

    def test_lambda_outside_loop_clean(self):
        violations = lint("""
            def wire(engine, req):
                engine.schedule(10, lambda: req.complete())
                for other in ():
                    other.touch()
            """, LoopVariableCaptureRule())
        assert violations == []

    def test_lambda_ignoring_loop_var_clean(self):
        violations = lint("""
            def wire(engine, requests, sink):
                for req in requests:
                    engine.schedule(10, lambda: sink.poll())
            """, LoopVariableCaptureRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM005 unregistered-counter
# ----------------------------------------------------------------------

_STATS_FIXTURE = """
    class LinkStats:
        def __init__(self):
            self.packets = 0
            self.flits = 0

    class Router:
        def __init__(self):
            self.stats = LinkStats()

        def on_packet(self, flits):
            self.stats.packets += 1
            self.stats.flits += flits
    """

_TYPO_FIXTURE = """
    class LinkStats:
        def __init__(self):
            self.packets = 0

    class Router:
        def __init__(self):
            self.stats = LinkStats()

        def on_packet(self):
            self.stats.packtes += 1
    """


class TestUnregisteredCounter:
    def test_typo_counter_fires(self):
        violations = lint(_TYPO_FIXTURE, UnregisteredCounterRule())
        assert [v.rule_id for v in violations] == ["SIM005"]
        assert "packtes" in violations[0].message

    def test_registered_counters_clean(self):
        violations = lint(_STATS_FIXTURE, UnregisteredCounterRule())
        assert violations == []

    def test_dataclass_fields_register(self):
        violations = lint("""
            from dataclasses import dataclass

            @dataclass
            class PrefetchStats:
                issued: int = 0

            def bump(prefetch_stats):
                prefetch_stats.issued += 1
            """, UnregisteredCounterRule())
        assert violations == []

    def test_cross_file_registry(self):
        # Counters registered in one module suppress findings in another.
        import ast as ast_mod
        project = ProjectIndex()
        project.collect(ast_mod.parse(textwrap.dedent("""
            class DramStats:
                def __init__(self):
                    self.row_hits = 0
            """)))
        violations = lint("""
            def bump(channel):
                channel.stats.row_hits += 1
            """, UnregisteredCounterRule(), project=project)
        assert violations == []

    def test_non_stats_attribute_clean(self):
        violations = lint("""
            class AnyStats:
                def __init__(self):
                    self.count = 0

            def bump(node):
                node.buffer.depth += 1
            """, UnregisteredCounterRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM006 bare-assert
# ----------------------------------------------------------------------

class TestBareAssert:
    def test_assert_fires(self):
        violations = lint("""
            def release(self, line):
                assert line in self.entries
                return self.entries.pop(line)
            """, BareAssertRule())
        assert [v.rule_id for v in violations] == ["SIM006"]

    def test_check_helper_clean(self):
        violations = lint("""
            from repro.analysis.invariants import check

            def release(self, line):
                check(line in self.entries, "phantom release of %x", line)
                return self.entries.pop(line)
            """, BareAssertRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM007 wall-clock
# ----------------------------------------------------------------------

class TestWallClock:
    def test_time_time_fires(self):
        violations = lint("""
            import time

            def stamp(record):
                record.at = time.time()
            """, WallClockRule())
        assert any(v.rule_id == "SIM007" for v in violations)

    def test_datetime_now_fires(self):
        violations = lint("""
            from datetime import datetime

            def stamp():
                return datetime.now()
            """, WallClockRule())
        assert len(violations) == 1

    def test_perf_counter_from_import_fires(self):
        violations = lint("""
            from time import perf_counter

            def measure():
                return perf_counter()
            """, WallClockRule())
        assert len(violations) == 1

    def test_engine_time_clean(self):
        violations = lint("""
            def stamp(engine, record):
                record.at = engine.now
            """, WallClockRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM008 port-bypass
# ----------------------------------------------------------------------

_BYPASS_SNIPPET = textwrap.dedent("""
    class L9Node:
        def request(self, req, cycle):
            self.engine.schedule(cycle + self.latency, self._done)
    """)

_PORT_ROUTED_SNIPPET = textwrap.dedent("""
    class L9Node:
        def request(self, req, cycle):
            self.port.schedule(cycle + self.latency, self._done)
    """)


class TestPortBypass:
    def test_engine_schedule_in_component_fires(self):
        violations = lint_source(
            _BYPASS_SNIPPET, [PortBypassRule()],
            path="src/repro/sim/hierarchy/l9.py")
        assert [v.rule_id for v in violations] == ["SIM008"]
        assert "Port" in violations[0].message

    def test_bare_engine_name_fires(self):
        violations = lint_source(
            textwrap.dedent("""
                def deliver(engine, cycle, thunk):
                    engine.schedule(cycle, thunk)
                """),
            [PortBypassRule()], path="src/repro/sim/hierarchy/l9.py")
        assert len(violations) == 1

    def test_port_schedule_clean(self):
        violations = lint_source(
            _PORT_ROUTED_SNIPPET, [PortBypassRule()],
            path="src/repro/sim/hierarchy/l9.py")
        assert violations == []

    def test_port_module_is_exempt(self):
        violations = lint_source(
            _BYPASS_SNIPPET, [PortBypassRule()],
            path="src/repro/sim/hierarchy/port.py")
        assert violations == []

    def test_outside_hierarchy_clean(self):
        violations = lint_source(
            _BYPASS_SNIPPET, [PortBypassRule()],
            path="src/repro/sim/system.py")
        assert violations == []


# ----------------------------------------------------------------------
# Framework behaviour: ignores, fingerprints, baseline
# ----------------------------------------------------------------------

class TestFrameworkBehaviour:
    def test_inline_ignore_specific_rule(self):
        violations = lint("""
            def f():
                assert True  # sim-lint: ignore[SIM006]
            """, BareAssertRule())
        assert violations == []

    def test_inline_ignore_other_rule_still_fires(self):
        violations = lint("""
            def f():
                assert True  # sim-lint: ignore[SIM001]
            """, BareAssertRule())
        assert len(violations) == 1

    def test_blanket_inline_ignore(self):
        violations = lint("""
            def f():
                assert True  # sim-lint: ignore
            """, BareAssertRule())
        assert violations == []

    def test_fingerprint_is_line_independent(self):
        one = lint("""
            def f():
                assert True
            """, BareAssertRule())
        two = lint("""


            def f():
                # comment shifting lines around
                assert True
            """, BareAssertRule())
        assert one[0].fingerprint == two[0].fingerprint
        assert one[0].line != two[0].line

    def test_scope_is_dotted_qualname(self):
        violations = lint("""
            class Cache:
                def fill(self):
                    assert True
            """, BareAssertRule())
        assert violations[0].scope == "Cache.fill"

    def test_all_rules_have_distinct_ids_and_docs(self):
        rules = default_rules()
        ids = [rule.id for rule in rules]
        assert len(set(ids)) == len(ids)
        assert len(ids) >= 6
        for rule in rules:
            assert type(rule).__doc__, f"{rule.id} missing docstring"
            assert rule.summary


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        violations = lint("""
            def f():
                assert True
            """, BareAssertRule())
        baseline = Baseline.from_violations(violations)
        path = tmp_path / "baseline.toml"
        baseline.dump(path)
        loaded = Baseline.load(path)
        assert loaded.is_suppressed(violations[0])
        assert loaded.entry_count == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.toml")
        assert baseline.entry_count == 0

    def test_restricted_parser_matches_tomllib(self, tmp_path):
        from repro.analysis.baseline import _parse_restricted_toml
        violations = lint("""
            class A:
                def f(self):
                    assert True
            """, BareAssertRule())
        path = tmp_path / "baseline.toml"
        Baseline.from_violations(violations).dump(path)
        text = path.read_text()
        import tomllib
        assert (_parse_restricted_toml(text)
                == {k: sorted(v) for k, v in
                    tomllib.loads(text)["suppressions"].items()})

    def test_suppression_respects_rule_id(self, tmp_path):
        violations = lint("""
            def f():
                assert True
            """, BareAssertRule())
        baseline = Baseline({"SIM001": {violations[0].fingerprint}})
        assert not baseline.is_suppressed(violations[0])


# ----------------------------------------------------------------------
# Repo gate + CLI entry points
# ----------------------------------------------------------------------

class TestRepoGate:
    def test_repo_is_clean_under_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.toml")
        report = run_lint([REPO_ROOT / "src" / "repro"], root=REPO_ROOT,
                          baseline=baseline)
        assert report.checked_files > 50
        messages = [v.format() for v in report.violations]
        assert report.ok, "unbaselined lint violations:\n" + "\n".join(
            messages)

    def test_trace_modules_have_no_rng_or_default_findings(self):
        # Satellite check: the workload-generation modules thread seeded
        # random.Random instances; SIM001/SIM003 must stay silent there.
        trace_dir = REPO_ROOT / "src" / "repro" / "trace"
        report = run_lint(
            [trace_dir / "mixes.py", trace_dir / "synthetic.py",
             trace_dir / "workloads.py"],
            root=REPO_ROOT)
        bad = [v for v in report.violations
               if v.rule_id in ("SIM001", "SIM003")]
        assert bad == []

    def test_main_json_output(self, tmp_path, capsys):
        target = tmp_path / "victim.py"
        target.write_text("def f(ac=[]):\n    assert ac\n")
        code = lint_main([str(target), "--format", "json",
                          "--baseline", str(tmp_path / "none.toml")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert sorted(payload["counts"]) == ["SIM003", "SIM006"]
        assert all(set(v) >= {"rule", "path", "line", "fingerprint"}
                   for v in payload["violations"])

    def test_main_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "victim.py"
        target.write_text("def f(ac=[]):\n    assert ac\n")
        baseline_path = tmp_path / "baseline.toml"
        assert lint_main([str(target), "--write-baseline",
                          "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--baseline",
                          str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "2 baseline-suppressed" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                        "SIM006", "SIM007", "SIM008", "SIM009", "SIM010",
                        "SIM011", "SIM012", "SIM013"):
            assert rule_id in out

    def test_cli_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "SIM006" in capsys.readouterr().out


class TestRepoGateCli:
    def test_cli_lint_runs_repo_gate(self, capsys, monkeypatch):
        from repro.cli import main as cli_main
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Unused suppressions + --update-baseline
# ----------------------------------------------------------------------

class TestUnusedSuppressions:
    def _stale_baseline(self, tmp_path):
        # One live violation (bare assert in f) and one stale entry for
        # a function that no longer violates anything.
        target = tmp_path / "victim.py"
        target.write_text("def f():\n    assert True\n")
        baseline_path = tmp_path / "baseline.toml"
        live = f"{target.as_posix()}::f"
        Baseline({"SIM006": {live, f"{target.as_posix()}::gone"}}).dump(
            baseline_path)
        return target, baseline_path

    def test_stale_fingerprint_reported(self, tmp_path):
        target, baseline_path = self._stale_baseline(tmp_path)
        report = run_lint([target],
                          baseline=Baseline.load(baseline_path))
        assert report.ok  # the live violation is suppressed
        assert len(report.unused_suppressions) == 1
        rule_id, fingerprint = report.unused_suppressions[0]
        assert rule_id == "SIM006"
        assert fingerprint.endswith("::gone")

    def test_stale_fingerprint_warns_in_text_output(self, tmp_path,
                                                    capsys):
        target, baseline_path = self._stale_baseline(tmp_path)
        assert lint_main([str(target), "--baseline",
                          str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "unused suppression" in out
        assert "::gone" in out

    def test_update_baseline_drops_stale_entries(self, tmp_path, capsys):
        target, baseline_path = self._stale_baseline(tmp_path)
        assert lint_main([str(target), "--baseline", str(baseline_path),
                          "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 stale removed" in out
        refreshed = Baseline.load(baseline_path)
        assert refreshed.entry_count == 1
        fingerprints = refreshed.suppressions["SIM006"]
        assert all(f.endswith("::f") for f in fingerprints)

    def test_update_baseline_roundtrip_is_stable(self, tmp_path, capsys):
        target, baseline_path = self._stale_baseline(tmp_path)
        assert lint_main([str(target), "--baseline", str(baseline_path),
                          "--update-baseline"]) == 0
        first = baseline_path.read_text()
        assert lint_main([str(target), "--baseline", str(baseline_path),
                          "--update-baseline"]) == 0
        assert baseline_path.read_text() == first
        capsys.readouterr()

    def test_update_baseline_keeps_new_violations(self, tmp_path, capsys):
        # A violation not yet in the baseline gets added.
        target = tmp_path / "victim.py"
        target.write_text("def f(ac=[]):\n    assert ac\n")
        baseline_path = tmp_path / "baseline.toml"
        assert lint_main([str(target), "--baseline", str(baseline_path),
                          "--update-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--baseline",
                          str(baseline_path)]) == 0


# ----------------------------------------------------------------------
# GitHub annotations + SARIF output
# ----------------------------------------------------------------------

class TestOutputFormats:
    def _violating_file(self, tmp_path):
        target = tmp_path / "victim.py"
        target.write_text("def f(ac=[]):\n    assert ac\n")
        return target

    def test_github_annotations(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        code = lint_main([str(target), "--format", "github",
                          "--baseline", str(tmp_path / "none.toml")])
        assert code == 1
        out = capsys.readouterr().out
        error_lines = [line for line in out.splitlines()
                       if line.startswith("::error ")]
        assert len(error_lines) == 2
        assert any("title=SIM003" in line for line in error_lines)
        assert any("title=SIM006" in line for line in error_lines)
        first = error_lines[0]
        assert f"file={target.as_posix()}" in first
        assert "line=1" in first

    def test_github_escapes_workflow_metacharacters(self):
        from repro.analysis.framework import Violation
        from repro.analysis.report import LintReport, render_github
        report = LintReport(checked_files=1, violations=[Violation(
            rule_id="SIM006", message="50% of\ncases", path="a.py",
            line=3, column=0, scope="f")])
        out = render_github(report)
        assert "50%25 of%0Acases" in out

    def test_github_warns_on_stale_suppression(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X = 1\n")
        baseline_path = tmp_path / "baseline.toml"
        Baseline({"SIM006": {"clean.py::gone"}}).dump(baseline_path)
        assert lint_main([str(target), "--format", "github",
                          "--baseline", str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "::warning " in out
        assert "unused suppression" in out

    def test_sarif_shape(self, tmp_path, capsys):
        target = self._violating_file(tmp_path)
        code = lint_main([str(target), "--format", "sarif",
                          "--baseline", str(tmp_path / "none.toml")])
        assert code == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-sim-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"SIM003", "SIM006"}
        assert len(run["results"]) == 2
        result = run["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == target.as_posix()
        assert location["region"]["startLine"] >= 1
        assert "simLint/v1" in result["partialFingerprints"]
        assert "suppressions" not in result

    def test_sarif_marks_baselined_results_suppressed(self, tmp_path,
                                                      capsys):
        target = self._violating_file(tmp_path)
        baseline_path = tmp_path / "baseline.toml"
        assert lint_main([str(target), "--write-baseline",
                          "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--format", "sarif",
                          "--baseline", str(baseline_path)]) == 0
        sarif = json.loads(capsys.readouterr().out)
        results = sarif["runs"][0]["results"]
        assert len(results) == 2
        assert all(r["suppressions"][0]["kind"] == "external"
                   for r in results)

    def test_repo_sarif_is_well_formed(self):
        # The exact artifact CI uploads parses and stays suppressed-only.
        from repro.analysis.report import render_sarif
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.toml")
        report = run_lint([REPO_ROOT / "src" / "repro"], root=REPO_ROOT,
                          baseline=baseline)
        sarif = json.loads(render_sarif(report))
        results = sarif["runs"][0]["results"]
        assert all("suppressions" in r for r in results)


# ----------------------------------------------------------------------
# Rule-liveness self-test (the script CI runs)
# ----------------------------------------------------------------------

class TestSelftestScript:
    def test_every_rule_fires_on_its_fixture(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "scripts" / "lint_selftest.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "self-test OK: all 13 rules fired" in proc.stdout


# ----------------------------------------------------------------------
# Retired module (repro.experiments.reporting)
# ----------------------------------------------------------------------

class TestReportingModuleRemoved:
    def test_import_raises_with_migration_directions(self):
        import importlib
        import sys

        sys.modules.pop("repro.experiments.reporting", None)
        with pytest.raises(ImportError) as excinfo:
            importlib.import_module("repro.experiments.reporting")
        message = str(excinfo.value)
        # The error must name every new home so the fix is mechanical.
        assert "repro.experiments.statistics" in message
        assert "repro.experiments.report" in message
        assert "repro.api" in message
        # A failed import must not leave a broken half-module cached.
        assert sys.modules.get("repro.experiments.reporting") is None
