"""Behavioural tests of the assembled CLIP controller."""

from __future__ import annotations

import dataclasses

import pytest

from repro import MulticoreSystem, run_system, scaled_config
from repro.config import ClipConfig
from repro.core.clip import Clip
from repro.trace import homogeneous_mix


def _clip_config(**kw) -> ClipConfig:
    config = ClipConfig(enabled=True, exploration_window_misses=32,
                        apc_history_windows=4)
    return dataclasses.replace(config, **kw)


class TestFilterRequestStages:
    def test_unknown_ip_dropped_as_noncritical(self):
        clip = Clip(_clip_config())
        allowed, crit = clip.filter_request(0x999, 0x4000, cycle=0)
        assert not allowed and not crit
        assert clip.stats.dropped_not_critical == 1

    def test_critical_trained_ip_passes_both_stages(self):
        clip = Clip(_clip_config())
        ip, address = 0x400, 0x4000
        for _ in range(4):
            clip.filter.record_critical(ip)
        # Teach the predictor that this context is critical.
        line = address >> 6
        for _ in range(3):
            clip.predictor.train(clip._signature(ip, line), True)
        allowed, crit = clip.filter_request(ip, address, cycle=0)
        assert allowed and crit
        assert clip.stats.prefetches_allowed == 1

    def test_predictor_veto(self):
        clip = Clip(_clip_config())
        ip, address = 0x400, 0x4000
        for _ in range(4):
            clip.filter.record_critical(ip)
        line = address >> 6
        for _ in range(6):
            clip.predictor.train(clip._signature(ip, line), False)
        allowed, _ = clip.filter_request(ip, address, cycle=0)
        assert not allowed
        assert clip.stats.dropped_predictor == 1

    def test_no_crit_flag_when_priority_disabled(self):
        clip = Clip(_clip_config(criticality_conscious_noc_dram=False))
        ip, address = 0x400, 0x4000
        for _ in range(4):
            clip.filter.record_critical(ip)
        clip.predictor.train(clip._signature(ip, address >> 6), True)
        allowed, crit = clip.filter_request(ip, address, cycle=0)
        assert allowed and not crit

    def test_stage1_disabled_passes_everything_unknown(self):
        clip = Clip(_clip_config(use_criticality_filter=False))
        allowed, _ = clip.filter_request(0x123, 0x9000, cycle=0)
        assert allowed

    def test_accuracy_stage_blocks_certified_inaccurate_ip(self):
        clip = Clip(_clip_config())
        ip = 0x400
        for _ in range(4):
            clip.filter.record_critical(ip)
        # Simulate a window of poor per-IP accuracy.
        for _ in range(10):
            clip.filter.note_issue(ip)
        clip.filter.note_hit(ip)
        clip.filter.end_window()
        clip.predictor.train(clip._signature(ip, 0x4000 >> 6), True)
        allowed, _ = clip.filter_request(ip, 0x4000, cycle=0)
        assert not allowed
        assert clip.stats.dropped_low_accuracy == 1


class TestUtilityAccounting:
    def test_issue_and_demand_match_credit_trigger_ip(self):
        clip = Clip(_clip_config())
        ip = 0x400
        for _ in range(4):
            clip.filter.record_critical(ip)
        clip.on_prefetch_issued(line=0x77, trigger_ip=ip)
        entry = clip.filter.get(ip)
        assert entry.issue_count == 1
        clip.on_l1d_access(line=0x77, cycle=10)
        assert entry.hit_count == 1

    def test_windows_advance_on_misses(self):
        clip = Clip(_clip_config(exploration_window_misses=8))
        for i in range(16):
            clip.on_l1d_miss(cycle=i * 10)
        assert clip.stats.windows == 2


class TestPhaseReset:
    def test_phase_change_resets_structures(self):
        clip = Clip(_clip_config(exploration_window_misses=4,
                                 apc_history_windows=4))
        clip.filter.record_critical(0x400)
        clip.predictor.train(123, True)
        clip.utility_buffer.insert(1, 0x400)
        # Warm up the APC history with a steady rate, then shift it hard.
        cycle = 0
        for window in range(6):
            for _ in range(40):
                clip.on_l1d_access(0, cycle)
            cycle += 1000
            for _ in range(4):
                clip.on_l1d_miss(cycle)
        # Now a dramatically hotter window.
        for _ in range(400):
            clip.on_l1d_access(0, cycle)
        cycle += 1000
        for _ in range(4):
            clip.on_l1d_miss(cycle)
        assert clip.stats.phase_changes >= 1
        assert len(clip.filter) == 0
        assert len(clip.utility_buffer) == 0
        # And prefetching pauses for the following window.
        allowed, _ = clip.filter_request(0x400, 0x4000, cycle)
        assert not allowed
        assert clip.stats.dropped_phase_pause == 1


class TestClipEndToEnd:
    def test_census_distinguishes_static_and_dynamic(self):
        """The hotcold stream makes some IPs dynamic-critical."""
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=8_000)
        config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                                   name="berti")
        config.clip.enabled = True
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        system.run()
        static = dynamic = 0
        for node in system.nodes:
            s, d = node.clip.critical_ip_census()
            static += s
            dynamic += d
        assert static + dynamic > 0

    def test_clip_never_issues_more_than_prefetcher(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=6_000)
        config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                                   name="berti")
        mix = homogeneous_mix("603.bwaves_s-1740B", 2)
        plain = run_system(config, mix)
        config.clip.enabled = True
        clipped = run_system(config, mix)
        assert clipped.prefetch.issued <= plain.prefetch.issued

    def test_signature_ablation_changes_predictions(self):
        full = Clip(_clip_config())
        ip_only = Clip(_clip_config(signature_use_address=False,
                                    signature_use_branch_history=False,
                                    signature_use_criticality_history=False))
        full.branch_history.push(True)
        ip_only.branch_history.push(True)
        assert full._signature(0x400, 0x99) != \
            full._signature(0x400, 0x99 + (1 << 10))
        assert ip_only._signature(0x400, 0x99) == \
            ip_only._signature(0x400, 0x99 + (1 << 10))
