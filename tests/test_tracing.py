"""Tests for request-level latency tracing."""

from __future__ import annotations

import dataclasses

import pytest

from repro import MulticoreSystem, scaled_config
from repro.cpu.core_model import ServiceLevel
from repro.sim.tracing import (RequestRecord, RequestTrace,
                               format_latency_report)
from repro.trace import homogeneous_mix


def _record(latency=100, level=ServiceLevel.DRAM, merged=False,
            issued=1000) -> RequestRecord:
    return RequestRecord(core_id=0, address=0x1000, issued_at=issued,
                         completed_at=issued + latency, level=level,
                         merged_into_prefetch=merged)


class TestRequestTrace:
    def test_latency_property(self):
        assert _record(latency=42).latency == 42

    def test_capacity_drops_overflow(self):
        trace = RequestTrace(capacity=2)
        for _ in range(5):
            trace.append(_record())
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_percentiles_ordered(self):
        trace = RequestTrace()
        for latency in range(1, 101):
            trace.append(_record(latency=latency))
        assert trace.percentile(0.5) <= trace.percentile(0.9) \
            <= trace.percentile(0.99)
        assert trace.percentile(0.0) == 1.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            RequestTrace().percentile(1.5)

    def test_level_filter(self):
        trace = RequestTrace()
        trace.append(_record(latency=10, level=ServiceLevel.L1))
        trace.append(_record(latency=500, level=ServiceLevel.DRAM))
        assert trace.latencies(ServiceLevel.L1) == [10]
        assert trace.percentile(0.5, ServiceLevel.DRAM) == 500.0

    def test_level_breakdown(self):
        trace = RequestTrace()
        trace.append(_record(level=ServiceLevel.L1))
        trace.append(_record(level=ServiceLevel.L1))
        trace.append(_record(level=ServiceLevel.DRAM))
        assert trace.level_breakdown() == {"L1": 2, "DRAM": 1}

    def test_histogram_buckets(self):
        trace = RequestTrace()
        for latency in (10, 20, 120, 5_000):
            trace.append(_record(latency=latency))
        histogram = trace.histogram(bucket_cycles=50, max_buckets=10)
        assert histogram["0-49"] == 2
        assert histogram["100-149"] == 1
        assert histogram[">=500"] == 1

    def test_empty_percentile_zero(self):
        assert RequestTrace().percentile(0.9) == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RequestTrace(0)


class TestTracingIntegration:
    def test_system_records_demand_loads(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=2_000)
        config.capture_request_trace = 10_000
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        result = system.run()
        trace = system.request_trace
        assert trace is not None and len(trace) > 0
        # Hits and misses are both present.
        breakdown = trace.level_breakdown()
        assert "L1" in breakdown
        assert any(level != "L1" for level in breakdown)
        # Traced loads never exceed retired loads.
        total_loads = sum(core.loads for core in result.cores)
        assert len(trace) <= total_loads

    def test_disabled_by_default(self):
        config = scaled_config(num_cores=1, channels=1,
                               sim_instructions=500)
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 1))
        assert system.request_trace is None

    def test_deeper_levels_slower(self):
        config = scaled_config(num_cores=2, channels=1,
                               sim_instructions=3_000)
        config.capture_request_trace = 10_000
        system = MulticoreSystem(config,
                                 homogeneous_mix("605.mcf_s-1536B", 2))
        system.run()
        trace = system.request_trace
        l1 = trace.percentile(0.5, ServiceLevel.L1)
        dram = trace.percentile(0.5, ServiceLevel.DRAM)
        assert dram > l1

    def test_report_renders(self):
        trace = RequestTrace()
        trace.append(_record(merged=True))
        text = format_latency_report(trace)
        assert "p99" in text and "merged into prefetch" in text
