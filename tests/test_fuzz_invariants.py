"""Property-based fuzzing of the full simulator.

Random small configurations and workload mixes must always run to
completion with conserved instruction counts, quiescent hardware at the
end, and deterministic replay -- the invariants that catch lost-wakeup
deadlocks and MSHR leaks.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MulticoreSystem, scaled_config
from repro.trace.workloads import (GAP_WORKLOADS, SPEC_HOMOGENEOUS_MIXES,
                                   CLOUDSUITE_WORKLOADS)

_POOL = SPEC_HOMOGENEOUS_MIXES[::9] + GAP_WORKLOADS[::6] \
    + CLOUDSUITE_WORKLOADS[:1]

_config_strategy = st.fixed_dictionaries({
    "cores": st.integers(min_value=1, max_value=4),
    "channels": st.sampled_from([1, 2]),
    "instructions": st.integers(min_value=200, max_value=1_500),
    "l1_pf": st.sampled_from(["none", "berti", "ipcp", "stride",
                              "streamer"]),
    "l2_pf": st.sampled_from(["none", "spp_ppf", "bingo"]),
    "clip": st.booleans(),
    "dynamic": st.booleans(),
    "criticality": st.sampled_from(["none", "fvp", "crisp"]),
    "throttle": st.sampled_from(["none", "fdp", "nst"]),
    "hermes": st.booleans(),
    "workloads": st.lists(st.sampled_from(_POOL), min_size=4, max_size=4),
})


def _build(params) -> MulticoreSystem:
    config = scaled_config(num_cores=params["cores"],
                           channels=params["channels"],
                           sim_instructions=params["instructions"])
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name=params["l1_pf"])
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher,
                                               name=params["l2_pf"])
    config.clip = dataclasses.replace(config.clip, enabled=params["clip"],
                                      dynamic=params["dynamic"])
    config.criticality.name = params["criticality"]
    config.throttle.name = params["throttle"]
    config.related = dataclasses.replace(config.related,
                                         hermes=params["hermes"])
    mix = params["workloads"][:params["cores"]]
    return MulticoreSystem(config, mix)


@given(_config_strategy)
@settings(max_examples=25, deadline=None)
def test_random_configurations_complete_cleanly(params):
    system = _build(params)
    result = system.run(max_cycles=5_000_000)
    # Instruction conservation.
    assert all(core.instructions == params["instructions"]
               for core in result.cores)
    # Quiescence: no leaked MSHRs, queues, or in-flight DRAM work.
    for node in system.nodes:
        assert not node.l1_mshr.entries and not node.l1_mshr.pending
        assert not node.l2_mshr.entries and not node.l2_mshr.pending
    for mshr_file in system.llc_mshr:
        assert not mshr_file.entries and not mshr_file.pending
    for channel in system.dram.channels:
        assert channel.in_flight == 0
        assert not channel.read_queue
    assert all(core.outstanding_loads == 0 for core in system.cores)
    # Sanity of aggregate statistics.
    assert result.total_cycles > 0
    assert 0.0 <= result.prefetch.accuracy <= 1.0
    assert 0.0 <= result.dram.utilization <= 1.0


@given(_config_strategy)
@settings(max_examples=8, deadline=None)
def test_replay_is_deterministic(params):
    first = _build(params).run(max_cycles=5_000_000)
    second = _build(params).run(max_cycles=5_000_000)
    assert first.total_cycles == second.total_cycles
    assert first.ipc_per_core == second.ipc_per_core
    assert first.prefetch.issued == second.prefetch.issued
    assert first.dram.reads == second.dram.reads
