"""Tests for the per-component counter layer (``repro.sim.counters``).

Unit coverage for the registry itself, plus system-level invariants tying
the counter snapshot to the aggregate result fields it must explain:
per-channel DRAM reads sum to the DRAM total, per-bank activates sum to
the row-miss count, flit-hops are bounded by the mesh diameter, and CLIP
structure-access counters appear exactly when CLIP is attached.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import scaled_config
from repro.sim.counters import CounterGroup, CounterRegistry
from repro.sim.system import run_system

MIX = ["605.mcf_s-1536B", "bfs-14", "619.lbm_s-2676B", "cloud9"]


def _run(clip: bool = False, prefetcher: str = "berti"):
    config = scaled_config(num_cores=4, channels=2,
                           sim_instructions=2_500)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher,
                                               name=prefetcher)
    if clip:
        config.clip = dataclasses.replace(config.clip, enabled=True)
    return config, run_system(config, MIX)


class TestCounterGroup:
    def test_snapshot_returns_fresh_dict(self):
        state = {"hits": 3}
        group = CounterGroup("g", lambda: dict(state))
        first = group.snapshot()
        first["hits"] = 99
        assert group.snapshot() == {"hits": 3}

    def test_snapshot_rejects_non_int(self):
        group = CounterGroup("g", lambda: {"ratio": 0.5})
        with pytest.raises(TypeError, match="ratio"):
            group.snapshot()

    def test_snapshot_rejects_bool(self):
        group = CounterGroup("g", lambda: {"flag": True})
        with pytest.raises(TypeError, match="flag"):
            group.snapshot()


class TestCounterRegistry:
    def test_duplicate_name_rejected(self):
        registry = CounterRegistry()
        registry.register("noc", lambda: {})
        with pytest.raises(ValueError, match="noc"):
            registry.register("noc", lambda: {})

    def test_snapshot_keyed_by_group(self):
        registry = CounterRegistry()
        registry.register("a", lambda: {"x": 1})
        registry.register("b", lambda: {"y": 2})
        assert registry.groups() == ("a", "b")
        assert registry.snapshot() == {"a": {"x": 1}, "b": {"y": 2}}


class TestSystemCounters:
    def test_expected_groups_present(self):
        config, result = _run()
        counters = result.counters
        for core_id in range(config.num_cores):
            for suffix in ("l1d", "l2", "chain"):
                assert f"core{core_id}.{suffix}" in counters
        assert "noc" in counters
        for channel in range(config.dram.channels):
            assert f"dram.ch{channel}" in counters
        assert any(group.startswith("llc.slice") for group in counters)

    def test_dram_channels_sum_to_totals(self):
        config, result = _run()
        groups = [values for group, values in result.counters.items()
                  if group.startswith("dram.ch")]
        assert sum(g["reads"] for g in groups) == result.dram.reads
        assert sum(g["writes"] for g in groups) == result.dram.writes
        assert sum(g["row_hits"] for g in groups) == result.dram.row_hits

    def test_per_bank_activates_sum_to_row_misses(self):
        """Open-page policy: every row miss issues exactly one ACT, so
        the per-bank activate counters must sum to the row-miss total."""
        config, result = _run()
        total_activates = 0
        for group, values in result.counters.items():
            if not group.startswith("dram.ch"):
                continue
            banks = [values[f"bank{b}_activates"]
                     for b in range(config.dram.banks_per_channel)]
            assert values["activates"] == sum(banks)
            total_activates += values["activates"]
        assert total_activates == result.dram.row_misses

    def test_flit_hops_exact_not_mean(self):
        """Flit-hops are per-packet route lengths, bounded by the mesh
        diameter, and consistent with the packet-level hop count."""
        config, result = _run()
        noc = result.counters["noc"]
        assert noc["flit_hops"] == result.noc.flit_hops > 0
        assert noc["total_hops"] == result.noc.total_hops > 0
        # Each packet carries >= 1 flit, so flit-hops >= total hops;
        # no route exceeds the mesh diameter.
        assert noc["flit_hops"] >= noc["total_hops"]
        diameter = 2 * (config.mesh_dim - 1)
        assert noc["total_hops"] <= noc["packets"] * diameter

    def test_l1_counters_match_level_stats(self):
        config, result = _run()
        total = sum(values["demand_accesses"]
                    for group, values in result.counters.items()
                    if group.endswith(".l1d"))
        assert total == result.levels["L1D"].demand_accesses

    def test_clip_counters_only_when_clip_enabled(self):
        _, without = _run(clip=False)
        for group, values in without.counters.items():
            if group.endswith(".chain"):
                assert "clip_filter_accesses" not in values
        _, with_clip = _run(clip=True)
        chain_groups = [values for group, values
                        in with_clip.counters.items()
                        if group.endswith(".chain")]
        assert chain_groups
        total = sum(g["clip_filter_accesses"] for g in chain_groups)
        assert total == with_clip.clip.filter_accesses > 0
        assert sum(g["clip_predictor_accesses"]
                   for g in chain_groups) > 0
        assert sum(g["clip_utility_cam_accesses"]
                   for g in chain_groups) > 0

    def test_counters_survive_serialisation(self):
        from repro.sim.stats import SimulationResult
        _, result = _run()
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.counters == result.counters
        assert rebuilt.energy_mj == result.energy_mj
        assert rebuilt.edp_mj_s == result.edp_mj_s
        assert rebuilt.energy_breakdown_mj == result.energy_breakdown_mj
