"""Fixed-seed equivalence: the hierarchy refactor is behaviour-preserving.

The goldens under ``tests/data/equivalence/`` were captured by running
``scripts/regenerate_equivalence_goldens.py`` against the pre-refactor
monolithic ``MulticoreSystem`` (the 855-line ``sim/system.py``).  Every
point's ``SimulationResult.to_dict()`` must stay bit-identical: same
cycle counts, same stat counters, same event interleaving.  A diff here
means the port/message decomposition changed simulated behaviour.
"""

from __future__ import annotations

import json

import pytest

from equivalence_points import GOLDEN_DIR, POINTS

from repro.sim.system import run_system


def _diff(expected, actual, path=""):
    """Human-readable leaf-level differences between two to_dict() trees."""
    out = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            out.extend(_diff(expected.get(key), actual.get(key),
                             f"{path}.{key}" if path else str(key)))
    elif isinstance(expected, list) and isinstance(actual, list) \
            and len(expected) == len(actual):
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_diff(e, a, f"{path}[{i}]"))
    elif expected != actual:
        out.append(f"  {path}: golden={expected!r} actual={actual!r}")
    return out


@pytest.mark.parametrize("point", sorted(POINTS))
def test_result_identical_to_pre_refactor_golden(point):
    golden_path = GOLDEN_DIR / f"{point}.json"
    golden = json.loads(golden_path.read_text())
    config, mix = POINTS[point]()
    assert mix == golden["workloads"]
    result = run_system(config, mix).to_dict()
    if result != golden["result"]:
        diffs = "\n".join(_diff(golden["result"], result)[:40])
        pytest.fail(f"SimulationResult.to_dict() diverged from the "
                    f"pre-refactor golden for point {point!r}:\n{diffs}")


def test_points_cover_clip_with_prefetchers():
    """The acceptance criteria require >= 2 points, one with CLIP +
    prefetchers enabled; keep the point set honest."""
    assert len(POINTS) >= 2
    clip_points = []
    for name, build in POINTS.items():
        config, _ = build()
        if config.clip.enabled and config.l1_prefetcher.name != "none":
            clip_points.append(name)
    assert clip_points, "no golden point exercises CLIP + prefetchers"


def test_goldens_have_signal():
    """Goldens must pin non-trivial activity, not an idle machine."""
    for name in POINTS:
        data = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        result = data["result"]
        assert result["total_cycles"] > 0
        assert result["dram"]["reads"] > 0
        if name != "none_mcf":
            assert result["prefetch"]["issued"] > 0
