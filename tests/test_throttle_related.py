"""Tests for throttlers, Hermes, and DSPatch."""

from __future__ import annotations

import pytest

from repro.prefetch.base import PrefetchRequest
from repro.related import DspatchModulator, HermesPredictor
from repro.throttle import (FdpThrottler, HpacThrottler, NstThrottler,
                            SpacThrottler, ThrottleSnapshot, make_throttler,
                            throttler_names)
from repro.throttle.base import AGGRESSIVENESS_SCALES


def _snapshot(accuracy=0.9, lateness=0.0, pollution=0.0,
              dram_utilization=0.5, mshr_occupancy=0.5,
              issued=100) -> ThrottleSnapshot:
    return ThrottleSnapshot(accuracy=accuracy, lateness=lateness,
                            pollution=pollution,
                            dram_utilization=dram_utilization,
                            mshr_occupancy=mshr_occupancy, issued=issued)


class TestFactory:
    def test_names(self):
        assert throttler_names() == ["fdp", "hpac", "nst", "spac"]

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_throttler("pid")


class TestFdp:
    def test_accurate_timely_untouched(self):
        fdp = FdpThrottler()
        start = fdp.scale
        for _ in range(10):
            fdp.decide(_snapshot(accuracy=0.95))
        assert fdp.scale == start

    def test_accurate_but_late_increases(self):
        fdp = FdpThrottler()
        fdp.decide(_snapshot(accuracy=0.95, lateness=0.5))
        assert fdp.scale > 1.0

    def test_inaccurate_decreases(self):
        fdp = FdpThrottler()
        for _ in range(5):
            fdp.decide(_snapshot(accuracy=0.2))
        assert fdp.scale == AGGRESSIVENESS_SCALES[0]

    def test_no_issues_no_change(self):
        fdp = FdpThrottler()
        before = fdp.scale
        fdp.decide(_snapshot(accuracy=0.0, issued=0))
        assert fdp.scale == before

    def test_level_clamped(self):
        fdp = FdpThrottler()
        for _ in range(20):
            fdp.decide(_snapshot(accuracy=0.95, lateness=0.9))
        assert fdp.scale == AGGRESSIVENESS_SCALES[-1]


class TestHpac:
    def test_global_override_throttles_harder(self):
        solo = FdpThrottler()
        hpac = HpacThrottler()
        snap = _snapshot(accuracy=0.5, dram_utilization=0.95)
        solo_scale = solo.decide(snap)
        hpac_scale = hpac.decide(snap)
        assert hpac_scale < solo_scale

    def test_no_override_at_low_bandwidth_use(self):
        hpac = HpacThrottler()
        scale = hpac.decide(_snapshot(accuracy=0.5, dram_utilization=0.2))
        assert scale >= AGGRESSIVENESS_SCALES[2]


class TestSpac:
    def test_high_utility_ramps_up(self):
        spac = SpacThrottler()
        for _ in range(10):
            spac.decide(_snapshot(accuracy=0.95, dram_utilization=0.1))
        assert spac.scale > 1.0

    def test_low_utility_under_contention_backs_off(self):
        spac = SpacThrottler()
        for _ in range(10):
            spac.decide(_snapshot(accuracy=0.4, dram_utilization=1.0))
        assert spac.scale < 1.0


class TestNst:
    def test_congested_near_side_backs_off(self):
        nst = NstThrottler()
        nst.decide(_snapshot(mshr_occupancy=0.9))
        assert nst.scale < 1.0

    def test_idle_near_side_ramps_up(self):
        nst = NstThrottler()
        nst.decide(_snapshot(mshr_occupancy=0.1, accuracy=0.8))
        assert nst.scale > 1.0

    def test_moderate_occupancy_stable(self):
        nst = NstThrottler()
        before = nst.scale
        nst.decide(_snapshot(mshr_occupancy=0.5))
        assert nst.scale == before


class TestHermes:
    def test_learns_offchip_ips(self):
        hermes = HermesPredictor()
        for i in range(60):
            hermes.train(0x400, 0x100000 + i * 64, went_offchip=True)
        assert hermes.predict_offchip(0x400, 0x100000 + 60 * 64)

    def test_learns_onchip_ips(self):
        hermes = HermesPredictor()
        for i in range(60):
            hermes.train(0x500, 0x200000 + i * 64, went_offchip=False)
        assert not hermes.predict_offchip(0x500, 0x200000)

    def test_accuracy_tracked(self):
        hermes = HermesPredictor()
        for i in range(50):
            hermes.predict_offchip(0x400, i * 64)
            hermes.train(0x400, i * 64, went_offchip=False)
        assert 0.0 <= hermes.accuracy <= 1.0

    def test_confident_correct_skips_update(self):
        hermes = HermesPredictor()
        for i in range(200):
            hermes.train(0x400, 0x1000, went_offchip=True)
        score = hermes._score(0x400, 0x1000)
        hermes.train(0x400, 0x1000, went_offchip=True)
        assert hermes._score(0x400, 0x1000) == score


class TestDspatch:
    def _train(self, dspatch, utilization):
        # More pages than the tracker holds, so generations retire into the
        # pattern store (retirement happens on page-buffer eviction).
        offsets = [0, 1, 4, 9]
        for page in range(DspatchModulator.MAX_PAGES + 40):
            base = page << 12
            for offset in offsets:
                dspatch.observe(0x400, base + offset * 64,
                                lambda a: utilization)
        return offsets

    def test_replays_pattern_after_training(self):
        dspatch = DspatchModulator()
        offsets = self._train(dspatch, utilization=0.0)
        requests = dspatch.observe(0x400, (999 << 12), lambda a: 0.0)
        assert requests
        predicted = {(r.address >> 6) & 0x3F for r in requests}
        assert predicted <= set(offsets)

    def test_mode_counters(self):
        dspatch = DspatchModulator()
        self._train(dspatch, utilization=0.0)
        dspatch.observe(0x400, (999 << 12), lambda a: 0.0)
        assert dspatch.coverage_mode_uses >= 1
        dspatch.observe(0x400, (1000 << 12), lambda a: 0.99)
        assert dspatch.accuracy_mode_uses >= 1

    def test_accuracy_mode_filters_low_confidence(self):
        dspatch = DspatchModulator()
        candidates = [
            PrefetchRequest(address=0x1000, fill_level=2, trigger_ip=1,
                            confidence=0.9),
            PrefetchRequest(address=0x2000, fill_level=2, trigger_ip=1,
                            confidence=0.3),
        ]
        kept = dspatch.filter_candidates(candidates, lambda a: 0.99)
        assert len(kept) == 1 and kept[0].confidence == 0.9

    def test_coverage_mode_keeps_everything(self):
        dspatch = DspatchModulator()
        candidates = [
            PrefetchRequest(address=0x1000, fill_level=2, trigger_ip=1,
                            confidence=0.1),
        ]
        kept = dspatch.filter_candidates(candidates, lambda a: 0.0)
        assert len(kept) == 1
