"""Tests for the workload characterisation tool."""

from __future__ import annotations

from repro.trace import Op, SyntheticWorkload, TraceRecord, get_workload
from repro.trace.analysis import format_profile, profile_trace


def _stride_trace(n=100, stride=64):
    return [TraceRecord(0x400, Op.LOAD, address=0x1000 + i * stride,
                        dst=1) for i in range(n)]


class TestProfileBasics:
    def test_counts(self):
        trace = [
            TraceRecord(0x400, Op.LOAD, address=0x1000, dst=1),
            TraceRecord(0x404, Op.STORE, address=0x1040, srcs=(1,)),
            TraceRecord(0x408, Op.BRANCH, taken=True),
            TraceRecord(0x40C, Op.ALU, dst=2),
        ]
        profile = profile_trace(trace)
        assert (profile.loads, profile.stores, profile.branches) == (1, 1, 1)
        assert profile.load_ratio == 0.25
        assert profile.unique_lines == 2

    def test_strided_ip_detected(self):
        profile = profile_trace(_stride_trace())
        ip_profile = profile.ip_profiles[0x400]
        assert ip_profile.strided
        assert ip_profile.dominant_delta == 64
        assert profile.strided_load_share == 1.0

    def test_random_ip_not_strided(self):
        import random
        rng = random.Random(4)
        trace = [TraceRecord(0x500, Op.LOAD,
                             address=rng.randrange(1, 1 << 20) * 64, dst=1)
                 for _ in range(200)]
        profile = profile_trace(trace)
        assert not profile.ip_profiles[0x500].strided

    def test_chase_links_counted(self):
        trace = [TraceRecord(0x600, Op.LOAD, address=0x1000, dst=7)]
        trace += [TraceRecord(0x600, Op.LOAD, address=0x2000 + i * 64,
                              dst=7, srcs=(7,)) for i in range(10)]
        profile = profile_trace(trace)
        assert profile.dependent_loads == 10

    def test_hot_ip_count(self):
        trace = _stride_trace(n=90)
        trace += [TraceRecord(0x900 + i, Op.LOAD, address=0x90000 + i * 64,
                              dst=1) for i in range(10)]
        profile = profile_trace(trace)
        assert profile.hot_ip_count == 1

    def test_reuse_factor_streaming_vs_hot(self):
        streaming = profile_trace(_stride_trace())
        hot = profile_trace([TraceRecord(0x400, Op.LOAD, address=0x1000,
                                         dst=1)] * 100)
        assert streaming.reuse_factor < hot.reuse_factor

    def test_empty_trace(self):
        profile = profile_trace([])
        assert profile.load_ratio == 0.0
        assert profile.reuse_factor == 0.0


class TestProfileOnModels:
    def test_mcf_profile_matches_character(self):
        trace = SyntheticWorkload(
            get_workload("605.mcf_s-1536B")).generate(5_000)
        profile = profile_trace(trace)
        assert profile.dependent_loads > 10
        assert profile.hot_ip_count < 20

    def test_bwaves_profile_is_strided(self):
        trace = SyntheticWorkload(
            get_workload("603.bwaves_s-1740B")).generate(5_000)
        profile = profile_trace(trace)
        assert profile.strided_load_share > 0.1

    def test_format_is_complete(self):
        trace = SyntheticWorkload(
            get_workload("619.lbm_s-2676B")).generate(2_000)
        text = format_profile(profile_trace(trace), name="lbm")
        for needle in ("workload: lbm", "load ratio", "footprint span",
                       "strided load share"):
            assert needle in text
