"""Tests for the cache substrate: tags, metadata, MSHRs, replacement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, MshrFile, make_policy
from repro.cache.replacement import (LruPolicy, MockingjayLitePolicy,
                                     NruPolicy, SrripPolicy, policy_names)
from repro.config import CacheConfig


def _small_cache(replacement: str = "lru") -> Cache:
    return Cache(CacheConfig(name="T", size_kib=4, ways=4, latency=1,
                             mshr_entries=4, replacement=replacement))


class TestCacheBasics:
    def test_miss_then_hit_after_fill(self):
        cache = _small_cache()
        assert not cache.access(0x100, pc=1, now=0)
        cache.fill(0x100, pc=1, now=1)
        assert cache.access(0x100, pc=1, now=2)

    def test_probe_does_not_disturb_stats(self):
        cache = _small_cache()
        cache.fill(0x5, pc=1, now=0)
        before = cache.stats.accesses
        assert cache.probe(0x5)
        assert not cache.probe(0x6)
        assert cache.stats.accesses == before

    def test_write_sets_dirty_and_eviction_reports_it(self):
        cache = _small_cache()
        sets = cache.num_sets
        cache.fill(0, pc=1, now=0)
        cache.access(0, pc=1, now=1, is_write=True)
        # Fill the set until line 0 is evicted.
        evicted = []
        for way in range(1, cache.ways + 1):
            out = cache.fill(way * sets, pc=1, now=2 + way)
            if out is not None:
                evicted.append(out)
        assert any(e.line == 0 and e.dirty for e in evicted)

    def test_fill_same_line_twice_is_metadata_merge(self):
        cache = _small_cache()
        cache.fill(0x10, pc=1, now=0)
        assert cache.fill(0x10, pc=1, now=1, dirty=True) is None
        evicted = cache.invalidate(0x10)
        assert evicted is not None and evicted.dirty

    def test_prefetched_line_becomes_useful_on_demand_hit(self):
        cache = _small_cache()
        cache.fill(0x20, pc=1, now=0, prefetch=True)
        assert cache.stats.prefetch_fills == 1
        cache.access(0x20, pc=1, now=1)
        assert cache.stats.useful_prefetches == 1
        # Second hit does not double count.
        cache.access(0x20, pc=1, now=2)
        assert cache.stats.useful_prefetches == 1

    def test_useless_eviction_counted_and_listener_fired(self):
        cache = _small_cache()
        seen = []
        cache.useless_eviction_listener = seen.append
        sets = cache.num_sets
        cache.fill(0, pc=1, now=0, prefetch=True)
        for way in range(1, cache.ways + 1):
            cache.fill(way * sets, pc=1, now=way)
        assert cache.stats.useless_evictions == 1
        assert seen == [0]

    def test_prefetch_use_listener(self):
        cache = _small_cache()
        seen = []
        cache.prefetch_use_listener = lambda line, ip: seen.append((line, ip))
        cache.fill(0x30, pc=1, now=0, prefetch=True, trigger_ip=0x999)
        cache.access(0x30, pc=2, now=1)
        assert seen == [(0x30, 0x999)]

    def test_occupancy_bounded_by_capacity(self):
        cache = _small_cache()
        for line in range(1000):
            cache.fill(line, pc=1, now=line)
        assert cache.occupancy <= cache.config.num_lines

    @given(st.lists(st.integers(min_value=0, max_value=4000), min_size=1,
                    max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_no_duplicate_lines_property(self, lines):
        """Invariant: a line is resident in at most one way."""
        cache = _small_cache()
        for t, line in enumerate(lines):
            if not cache.access(line, pc=1, now=t):
                cache.fill(line, pc=1, now=t)
        for set_map in cache._map:
            ways = list(set_map.values())
            assert len(ways) == len(set(ways))

    @given(st.lists(st.integers(min_value=0, max_value=512), min_size=1,
                    max_size=200),
           st.sampled_from(policy_names()))
    @settings(max_examples=20, deadline=None)
    def test_fill_then_immediate_access_hits(self, lines, policy):
        cache = _small_cache(policy)
        for t, line in enumerate(lines):
            cache.fill(line, pc=line & 0xFF, now=t)
            assert cache.access(line, pc=line & 0xFF, now=t)


class TestReplacementPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LruPolicy(1, 4)
        for way in range(4):
            policy.on_fill(0, way, now=way, pc=0)
        policy.on_hit(0, 0, now=10, pc=0)
        assert policy.victim(0, now=11, valid=[True] * 4) == 1

    def test_nru_prefers_unreferenced(self):
        policy = NruPolicy(1, 4)
        policy.on_fill(0, 0, now=0, pc=0)
        policy.on_fill(0, 2, now=1, pc=0)
        victim = policy.victim(0, now=2, valid=[True] * 4)
        assert victim in (1, 3)

    def test_nru_resets_when_all_referenced(self):
        policy = NruPolicy(1, 2)
        policy.on_fill(0, 0, now=0, pc=0)
        policy.on_fill(0, 1, now=1, pc=0)
        # All referenced; last touch was way 1 so way 0 got cleared.
        assert policy.victim(0, now=2, valid=[True] * 2) == 0

    def test_srrip_hit_promotes(self):
        policy = SrripPolicy(1, 2)
        policy.on_fill(0, 0, now=0, pc=0)
        policy.on_fill(0, 1, now=1, pc=0)
        policy.on_hit(0, 0, now=2, pc=0)
        assert policy.victim(0, now=3, valid=[True] * 2) == 1

    def test_srrip_prefetch_inserted_distant(self):
        policy = SrripPolicy(1, 2)
        policy.on_fill(0, 0, now=0, pc=0, prefetch=True)
        policy.on_fill(0, 1, now=1, pc=0, prefetch=False)
        assert policy.victim(0, now=2, valid=[True] * 2) == 0

    def test_mockingjay_evicts_no_history_first(self):
        policy = MockingjayLitePolicy(1, 2)
        policy.on_fill(0, 0, now=0, pc=0xA)
        policy.on_hit(0, 0, now=10, pc=0xA)   # trains reuse ~10 for pc A
        policy.on_fill(0, 1, now=11, pc=0xB)  # pc B: no reuse history
        assert policy.victim(0, now=12, valid=[True] * 2) == 1

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("belady", 4, 4)


class TestMshr:
    def test_allocate_and_release(self):
        mshrs = MshrFile(2)
        entry = mshrs.allocate(0x1, is_prefetch=False, crit=False,
                               trigger_ip=0x40, now=5)
        assert mshrs.lookup(0x1) is entry
        assert mshrs.release(0x1) is entry
        assert mshrs.lookup(0x1) is None

    def test_full_detection(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x1, False, False, 0, 0)
        assert mshrs.full
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x2, False, False, 0, 0)

    def test_duplicate_allocation_rejected(self):
        mshrs = MshrFile(2)
        mshrs.allocate(0x1, False, False, 0, 0)
        with pytest.raises(ValueError):
            mshrs.allocate(0x1, False, False, 0, 0)

    def test_demand_merge_into_prefetch_is_late(self):
        mshrs = MshrFile(2)
        entry = mshrs.allocate(0x1, is_prefetch=True, crit=False,
                               trigger_ip=0, now=0)
        mshrs.merge(entry, waiter=None, is_prefetch=False)
        assert mshrs.late_prefetch_merges == 1
        assert entry.demand_merged
        # A second demand merge does not double count.
        mshrs.merge(entry, waiter=None, is_prefetch=False)
        assert mshrs.late_prefetch_merges == 1

    def test_prefetch_merge_is_not_late(self):
        mshrs = MshrFile(2)
        entry = mshrs.allocate(0x1, is_prefetch=True, crit=False,
                               trigger_ip=0, now=0)
        mshrs.merge(entry, waiter=None, is_prefetch=True)
        assert mshrs.late_prefetch_merges == 0

    def test_waiters_accumulate(self):
        mshrs = MshrFile(2)
        entry = mshrs.allocate(0x1, False, False, 0, 0)
        mshrs.merge(entry, waiter="a", is_prefetch=False)
        mshrs.merge(entry, waiter="b", is_prefetch=False)
        assert entry.waiters == ["a", "b"]

    def test_peak_occupancy_tracked(self):
        mshrs = MshrFile(4)
        for line in range(3):
            mshrs.allocate(line, False, False, 0, 0)
        mshrs.release(0)
        assert mshrs.peak_occupancy == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestLfuPolicy:
    def test_victim_is_least_frequent(self):
        from repro.cache.replacement import LfuPolicy
        policy = LfuPolicy(1, 3)
        for way in range(3):
            policy.on_fill(0, way, now=0, pc=0)
        policy.on_hit(0, 0, now=1, pc=0)
        policy.on_hit(0, 0, now=2, pc=0)
        policy.on_hit(0, 2, now=3, pc=0)
        assert policy.victim(0, now=4, valid=[True] * 3) == 1

    def test_fill_resets_count(self):
        from repro.cache.replacement import LfuPolicy
        policy = LfuPolicy(1, 2)
        policy.on_fill(0, 0, now=0, pc=0)
        for _ in range(5):
            policy.on_hit(0, 0, now=1, pc=0)
        policy.on_fill(0, 0, now=2, pc=0)  # replaced: frequency restarts
        policy.on_fill(0, 1, now=3, pc=0)
        policy.on_hit(0, 1, now=4, pc=0)
        assert policy.victim(0, now=5, valid=[True] * 2) == 0

    def test_usable_in_cache(self):
        cache = _small_cache("lfu")
        cache.fill(0x1, pc=1, now=0)
        assert cache.access(0x1, pc=1, now=1)
