"""Tests for the whole-program passes SIM009-SIM013.

Every rule gets (a) a seeded violation that must be reported at the
right file/line/scope and (b) a near-miss clean fixture that a purely
syntactic version of the rule would flag -- pinning the call-graph gate
and the taint precision, not just the pattern match.
"""

from __future__ import annotations

import textwrap

from repro.analysis.framework import lint_source
from repro.analysis.wholeprogram import (COMPILE_HOT_SET,
                                         CompilationReadinessRule,
                                         EntropyInSimStateRule,
                                         NondeterministicIterationRule,
                                         RngOutsideTraceRule,
                                         UnorderedReductionRule)


def lint(source: str, rule, path: str = "src/repro/x.py"):
    return lint_source(textwrap.dedent(source), [rule], path=path)


# ----------------------------------------------------------------------
# SIM009 nondet-iteration
# ----------------------------------------------------------------------

class TestNondeterministicIteration:
    def test_set_iteration_reaching_schedule_fires(self):
        violations = lint("""
            def drain(engine, requests):
                pending = set(requests)
                for req in pending:
                    engine.schedule(1, req)
            """, NondeterministicIterationRule())
        assert [v.rule_id for v in violations] == ["SIM009"]
        assert violations[0].path == "src/repro/x.py"
        assert violations[0].line == 4  # the for statement
        assert violations[0].scope == "drain"
        assert "set(...)" in violations[0].message

    def test_listdir_iteration_fires(self):
        violations = lint("""
            import os

            def load(engine, root):
                for name in os.listdir(root):
                    engine.schedule(1, name)
            """, NondeterministicIterationRule())
        assert len(violations) == 1
        assert "listdir" in violations[0].message

    def test_comprehension_over_set_fires(self):
        violations = lint("""
            def spawn(engine, cores):
                idle = {c for c in cores if c.idle}
                plans = [c.plan() for c in idle]
                engine.schedule(1, plans)
            """, NondeterministicIterationRule())
        assert len(violations) == 1
        assert "comprehension" in violations[0].message

    def test_sorted_wrapper_clean(self):
        violations = lint("""
            def drain(engine, requests):
                pending = set(requests)
                for req in sorted(pending):
                    engine.schedule(1, req)
            """, NondeterministicIterationRule())
        assert violations == []

    def test_non_sim_function_exempt(self):
        # Identical iteration, but nothing sim-state-ish is reachable:
        # the call-graph gate must keep it clean.
        violations = lint("""
            def tally(requests):
                pending = set(requests)
                total = 0
                for req in pending:
                    total += 1
                return total
            """, NondeterministicIterationRule())
        assert violations == []

    def test_list_conversion_still_tainted(self):
        violations = lint("""
            def drain(engine, requests):
                ordered = list(set(requests))
                for req in ordered:
                    engine.schedule(1, req)
            """, NondeterministicIterationRule())
        assert len(violations) == 1


# ----------------------------------------------------------------------
# SIM010 rng-outside-trace
# ----------------------------------------------------------------------

class TestRngOutsideTrace:
    def test_seeded_rng_on_sim_path_fires(self):
        violations = lint("""
            import random

            def inject(engine, seed):
                rng = random.Random(seed)
                engine.schedule(rng.randrange(8), None)
            """, RngOutsideTraceRule())
        assert [v.rule_id for v in violations] == ["SIM010"]
        assert violations[0].line == 5
        assert "random.Random" in violations[0].message

    def test_global_rng_call_fires(self):
        violations = lint("""
            import random

            def jitter(engine):
                engine.schedule(random.randrange(4), None)
            """, RngOutsideTraceRule())
        assert len(violations) == 1
        assert "module-global" in violations[0].message

    def test_from_import_rng_class_fires(self):
        violations = lint("""
            from random import Random

            def inject(engine, seed):
                rng = Random(seed)
                engine.schedule(1, rng)
            """, RngOutsideTraceRule())
        assert len(violations) == 1

    def test_trace_modules_exempt(self):
        violations = lint("""
            import random

            def generate(engine, seed):
                rng = random.Random(seed)
                engine.schedule(rng.randrange(8), None)
            """, RngOutsideTraceRule(), path="src/repro/trace/synthetic.py")
        assert violations == []

    def test_non_sim_function_exempt(self):
        violations = lint("""
            import random

            def shuffle_report(rows, seed):
                rng = random.Random(seed)
                rng.shuffle(rows)
                return rows
            """, RngOutsideTraceRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM011 entropy-in-sim-state
# ----------------------------------------------------------------------

class TestEntropyInSimState:
    def test_wall_clock_stored_in_attribute_fires(self):
        violations = lint("""
            import time

            class Sampler:
                def stamp(self, engine):
                    self.started = time.time()
                    engine.schedule(1, None)
            """, EntropyInSimStateRule())
        assert [v.rule_id for v in violations] == ["SIM011"]
        assert violations[0].line == 6  # the attribute store
        assert violations[0].scope == "Sampler.stamp"
        assert "time.time" in violations[0].message

    def test_id_as_container_key_fires(self):
        violations = lint("""
            class Tracker:
                def index(self, engine, req):
                    self.table[id(req)] = req
                    engine.schedule(1, None)
            """, EntropyInSimStateRule())
        assert len(violations) == 1
        assert "key" in violations[0].message

    def test_entropy_into_schedule_fires(self):
        violations = lint("""
            import time

            def kick(engine):
                engine.schedule(int(time.time()), None)
            """, EntropyInSimStateRule())
        assert len(violations) == 1
        assert "schedule" in violations[0].message

    def test_sort_by_id_fires(self):
        violations = lint("""
            def order(engine, items):
                items.sort(key=id)
                engine.schedule(1, items)
            """, EntropyInSimStateRule())
        assert len(violations) == 1
        assert "allocation-dependent" in violations[0].message

    def test_hash_of_literal_clean(self):
        violations = lint("""
            class Sampler:
                def tag(self, engine):
                    self.slot = hash("berti") % 8
                    engine.schedule(1, None)
            """, EntropyInSimStateRule())
        assert violations == []

    def test_engine_now_clean(self):
        violations = lint("""
            class Sampler:
                def stamp(self, engine):
                    self.started = engine.now
                    engine.schedule(1, None)
            """, EntropyInSimStateRule())
        assert violations == []

    def test_non_sim_function_exempt(self):
        violations = lint("""
            import time

            def benchmark(fn):
                started = time.time()
                fn()
                return time.time() - started
            """, EntropyInSimStateRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM012 unordered-reduction
# ----------------------------------------------------------------------

class TestUnorderedReduction:
    def test_sum_over_set_fires(self):
        violations = lint("""
            def total(values):
                pool = set(values)
                return sum(pool)
            """, UnorderedReductionRule())
        assert [v.rule_id for v in violations] == ["SIM012"]
        assert violations[0].line == 4
        assert violations[0].scope == "total"

    def test_statistics_fmean_over_set_fires(self):
        violations = lint("""
            import statistics

            def average(values):
                pool = frozenset(values)
                return statistics.fmean(pool)
            """, UnorderedReductionRule())
        assert len(violations) == 1
        assert "fmean" in violations[0].message

    def test_sum_over_sorted_clean(self):
        violations = lint("""
            def total(values):
                pool = set(values)
                return sum(sorted(pool))
            """, UnorderedReductionRule())
        assert violations == []

    def test_constant_element_count_clean(self):
        # sum(1 for _ in s) is order-insensitive; the sweep module
        # relies on this staying clean.
        violations = lint("""
            def count(root):
                return sum(1 for _ in root.glob("*.json"))
            """, UnorderedReductionRule())
        assert violations == []

    def test_sum_over_list_clean(self):
        violations = lint("""
            def total(values):
                return sum(list(values))
            """, UnorderedReductionRule())
        assert violations == []


# ----------------------------------------------------------------------
# SIM013 compile-readiness
# ----------------------------------------------------------------------

class TestCompilationReadiness:
    def test_attribute_outside_init_fires(self):
        violations = lint("""
            class Cache:
                def __init__(self):
                    self.lines = {}

                def warm(self):
                    self.ready = True
            """, CompilationReadinessRule())
        assert [v.rule_id for v in violations] == ["SIM013"]
        assert violations[0].line == 7
        assert violations[0].scope == "Cache.warm"
        assert "'ready'" in violations[0].message

    def test_inherited_declaration_clean(self):
        # Base.__init__ declares the attribute; mutating it in a
        # subclass method is a layout-stable write, not a new slot.
        violations = lint("""
            class Base:
                def __init__(self):
                    self.level = 3

            class Derived(Base):
                def decide(self):
                    self.level += 1
            """, CompilationReadinessRule())
        assert violations == []

    def test_grandparent_declaration_clean(self):
        violations = lint("""
            class A:
                def __init__(self):
                    self.n = 0

            class B(A):
                pass

            class C(B):
                def bump(self):
                    self.n += 1
            """, CompilationReadinessRule())
        assert violations == []

    def test_class_annotation_declares(self):
        violations = lint("""
            class Entry:
                valid: bool = False

                def invalidate(self):
                    self.valid = False
            """, CompilationReadinessRule())
        assert violations == []

    def test_setattr_fires(self):
        violations = lint("""
            def patch(obj):
                setattr(obj, "mode", 1)
            """, CompilationReadinessRule())
        assert len(violations) == 1
        assert "setattr" in violations[0].message

    def test_vars_of_object_fires(self):
        violations = lint("""
            def dump(obj):
                return vars(obj)
            """, CompilationReadinessRule())
        assert len(violations) == 1

    def test_bare_vars_clean(self):
        violations = lint("""
            def locals_snapshot():
                return vars()
            """, CompilationReadinessRule())
        assert violations == []

    def test_dunder_dict_access_fires(self):
        violations = lint("""
            def fields(obj):
                return obj.__dict__.keys()
            """, CompilationReadinessRule())
        assert len(violations) == 1
        assert "__dict__" in violations[0].message

    def test_star_import_fires(self):
        violations = lint("from os.path import *\n",
                          CompilationReadinessRule())
        assert len(violations) == 1
        assert "star import" in violations[0].message

    def test_slots_violation_fires(self):
        violations = lint("""
            class Line:
                __slots__ = ("tag",)

                def __init__(self):
                    self.tag = 0

                def touch(self):
                    self.state = 1
            """, CompilationReadinessRule())
        assert len(violations) == 1
        assert "__slots__" in violations[0].message
        assert "'state'" in violations[0].message

    def test_slots_respected_clean(self):
        violations = lint("""
            class Line:
                __slots__ = ("tag", "state")

                def __init__(self):
                    self.tag = 0
                    self.state = 0

                def touch(self):
                    self.state = 1
            """, CompilationReadinessRule())
        assert violations == []

    def test_hot_set_findings_are_labelled(self):
        violations = lint("""
            def dump(obj):
                return vars(obj)
            """, CompilationReadinessRule(),
            path="src/repro/sim/engine.py")
        assert "compile hot set" in violations[0].message

    def test_hot_set_membership(self):
        rule = CompilationReadinessRule()
        assert rule.in_hot_set("src/repro/sim/engine.py")
        assert rule.in_hot_set("src/repro/cache/replacement.py")
        assert rule.in_hot_set("src/repro/sim/hierarchy/port.py")
        assert not rule.in_hot_set("src/repro/experiments/export.py")
        assert COMPILE_HOT_SET  # the hot set is non-empty by contract
