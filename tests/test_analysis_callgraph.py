"""Tests for the project call graph behind the whole-program passes.

The graph is name-based and over-approximate by design; these tests pin
the resolution rules (same-module names, from-imports, attribute calls,
nested defs), the sim-state sink definitions, and the conservative
answers for functions the graph has never seen.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Dict

from repro.analysis.callgraph import (MODULE_SCOPE, CallGraph, FunctionRef,
                                      build_callgraph, function_ref)


def build(modules: Dict[str, str]) -> CallGraph:
    return build_callgraph(
        [(path, ast.parse(textwrap.dedent(source)))
         for path, source in modules.items()])


def ref(path: str, qualname: str) -> FunctionRef:
    return FunctionRef(path, qualname)


class TestSinks:
    def test_schedule_call_touches_sim_state(self):
        graph = build({"src/repro/a.py": """
            def dispatch(engine, thunk):
                engine.schedule(5, thunk)
            """})
        assert graph.touches_sim_state(ref("src/repro/a.py", "dispatch"))

    def test_port_replay_and_defer_touch_sim_state(self):
        graph = build({"src/repro/a.py": """
            def flush(port):
                port.replay()

            def push(port, req):
                port.defer(req)
            """})
        assert graph.touches_sim_state(ref("src/repro/a.py", "flush"))
        assert graph.touches_sim_state(ref("src/repro/a.py", "push"))

    def test_result_construction_touches_sim_state(self):
        graph = build({"src/repro/a.py": """
            def summarise(ipc):
                return SimulationResult(ipc=ipc)
            """})
        assert graph.touches_sim_state(ref("src/repro/a.py", "summarise"))

    def test_stats_attribute_store_touches_sim_state(self):
        graph = build({"src/repro/a.py": """
            def bump(core):
                core.dram_stats.row_hits += 1
            """})
        assert graph.touches_sim_state(ref("src/repro/a.py", "bump"))

    def test_plain_helper_does_not_touch(self):
        graph = build({"src/repro/a.py": """
            def double(x):
                return 2 * x
            """})
        assert not graph.touches_sim_state(ref("src/repro/a.py", "double"))
        assert not graph.reaches_sim_state(ref("src/repro/a.py", "double"))


class TestReachability:
    def test_transitive_same_module(self):
        graph = build({"src/repro/a.py": """
            def outer(engine):
                middle(engine)

            def middle(engine):
                inner(engine)

            def inner(engine):
                engine.schedule(1, None)

            def bystander(x):
                return x + 1
            """})
        path = "src/repro/a.py"
        assert graph.reaches_sim_state(ref(path, "outer"))
        assert graph.reaches_sim_state(ref(path, "middle"))
        assert not graph.reaches_sim_state(ref(path, "bystander"))

    def test_from_import_resolution_crosses_modules(self):
        graph = build({
            "src/repro/sinks.py": """
                def record(stats):
                    stats.result.total += 1
                """,
            "src/repro/caller.py": """
                from repro.sinks import record

                def run(stats):
                    record(stats)

                def idle():
                    return 0
                """,
        })
        assert graph.reaches_sim_state(
            ref("src/repro/caller.py", "run"))
        assert not graph.reaches_sim_state(
            ref("src/repro/caller.py", "idle"))

    def test_attribute_call_is_type_blind(self):
        # obj.tick() links to every project method named tick.
        graph = build({
            "src/repro/core.py": """
                class Core:
                    def tick(self, engine):
                        engine.schedule(1, None)
                """,
            "src/repro/driver.py": """
                def step(anything):
                    anything.tick(None)
                """,
        })
        assert graph.reaches_sim_state(
            ref("src/repro/driver.py", "step"))

    def test_nested_function_edges_to_parent(self):
        graph = build({"src/repro/a.py": """
            def wire(engine):
                def fire():
                    engine.schedule(3, None)
                return fire
            """})
        path = "src/repro/a.py"
        assert graph.touches_sim_state(ref(path, "wire.fire"))
        assert graph.reaches_sim_state(ref(path, "wire"))

    def test_module_scope_is_a_function(self):
        graph = build({"src/repro/a.py": """
            import repro.engine

            ENGINE = object()
            ENGINE.schedule(0, None)
            """})
        assert graph.reaches_sim_state(
            ref("src/repro/a.py", MODULE_SCOPE))

    def test_unknown_function_answers_true(self):
        graph = build({"src/repro/a.py": "def f():\n    return 1\n"})
        assert graph.reaches_sim_state(
            ref("src/repro/never_collected.py", "ghost"))

    def test_imported_class_construction_reaches_its_init(self):
        graph = build({
            "src/repro/model.py": """
                class Engine:
                    def __init__(self):
                        self.stats.events = 0
                """,
            "src/repro/boot.py": """
                from repro.model import Engine

                def boot():
                    return Engine()
                """,
        })
        assert graph.reaches_sim_state(ref("src/repro/boot.py", "boot"))


class TestFunctionRefHelper:
    def test_scope_parts_join(self):
        assert function_ref("p.py", ["Cls", "meth"]) == FunctionRef(
            "p.py", "Cls.meth")

    def test_name_appended(self):
        assert function_ref("p.py", ["Cls"], "meth") == FunctionRef(
            "p.py", "Cls.meth")

    def test_empty_scope_is_module(self):
        assert function_ref("p.py", []).qualname == MODULE_SCOPE

    def test_str_formats_path_and_qualname(self):
        assert str(FunctionRef("p.py", "f")) == "p.py::f"


class TestGraphQueries:
    def test_functions_sorted_and_callees(self):
        graph = build({"src/repro/a.py": """
            def a():
                b()

            def b():
                return 0
            """})
        path = "src/repro/a.py"
        names = [r.qualname for r in graph.functions()]
        assert names == sorted(names)
        assert ref(path, "b") in graph.callees_of(ref(path, "a"))
        assert graph.callees_of(ref(path, "b")) == set()
