"""Backend equivalence: the batch engine is bit-identical to the event engine.

The batch backend (``repro.sim.batch``) replaces per-event Python
dispatch with batch-stepped cores over struct-of-arrays trace state, but
it is *not allowed* to change simulated behaviour: for any
configuration, ``SimulationResult.to_dict()`` must match the event
engine exactly -- same cycle counts, same stat counters, same event
interleaving.  That contract is what lets sweep cache entries be shared
across backends (``RunSpec.cache_key`` excludes the backend).

Two layers of pinning:

* every golden-matrix point from :mod:`equivalence_points` (the eight
  points that pin the hierarchy refactor plus the two learned-policy
  points) runs under both backends and the full result dicts are
  compared leaf-by-leaf;
* a seeded random-config fuzz sweeps core counts, channel counts,
  schemes, and workload mixes the matrix does not cover.
"""

from __future__ import annotations

import random

import pytest

from equivalence_points import POINTS

from repro.experiments.sweep import RunSpec, Scheme
from repro.sim.system import run_system


def _diff(expected, actual, path=""):
    """Human-readable leaf-level differences between two to_dict() trees."""
    out = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            out.extend(_diff(expected.get(key), actual.get(key),
                             f"{path}.{key}" if path else str(key)))
    elif isinstance(expected, list) and isinstance(actual, list) \
            and len(expected) == len(actual):
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_diff(e, a, f"{path}[{i}]"))
    elif expected != actual:
        out.append(f"  {path}: event={expected!r} batch={actual!r}")
    return out


def _assert_backends_identical(build, label):
    """Run ``build()``'s (config, mix) under both backends and compare."""
    config, mix = build()
    config.backend = "event"
    event = run_system(config, mix).to_dict()
    config, mix = build()
    config.backend = "batch"
    batch = run_system(config, mix).to_dict()
    if event != batch:
        diffs = "\n".join(_diff(event, batch)[:40])
        pytest.fail(f"batch backend diverged from the event backend on "
                    f"{label}:\n{diffs}")
    # The per-component counter layer is part of the contract: both
    # backends must report the same non-empty group -> counter dicts
    # (asserted explicitly, not just via the full-dict comparison above,
    # so a future serialisation change cannot silently drop them).
    assert event["counters"], f"no counter groups on {label}"
    assert event["counters"] == batch["counters"]
    return event


# ---------------------------------------------------------------------------
# Golden matrix: the hierarchy-equivalence + learned-policy points
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("point", sorted(POINTS))
def test_batch_matches_event_on_golden_point(point):
    result = _assert_backends_identical(POINTS[point], f"point {point!r}")
    # Guard against vacuous equality on an idle machine.
    assert result["total_cycles"] > 0
    assert result["dram"]["reads"] > 0
    # Counter-layer signal: every expected component group is present
    # and the hierarchy actually moved data.
    counters = result["counters"]
    config, _ = POINTS[point]()
    for core_id in range(config.num_cores):
        assert f"core{core_id}.l1d" in counters
        assert f"core{core_id}.l2" in counters
        assert f"core{core_id}.chain" in counters
    assert "noc" in counters and counters["noc"]["flit_hops"] > 0
    assert any(group.startswith("dram.ch") for group in counters)
    total_dram_reads = sum(values["reads"] for group, values
                           in counters.items()
                           if group.startswith("dram.ch"))
    assert total_dram_reads == result["dram"]["reads"]


# ---------------------------------------------------------------------------
# Seeded random-config fuzz
# ---------------------------------------------------------------------------

_FUZZ_WORKLOADS = [
    "605.mcf_s-1536B", "602.gcc_s-1850B", "619.lbm_s-2676B",
    "620.omnetpp_s-141B", "623.xalancbmk_s-10B", "649.fotonik3d_s-10881B",
    "bfs-14", "pr-14", "cc-14", "tc-14",
]

_FUZZ_SCHEMES = [
    "none", "berti", "berti+clip", "ipcp", "ipcp+clip", "stride",
    "streamer+clip", "spp_ppf", "bingo", "berti+fvp", "berti+fdp",
]

#: The learned schemes fuzz on their own seed range so adding them did
#: not reshuffle the draws (and hence the coverage) of seeds 0..7.
_LEARNED_FUZZ_SCHEMES = [
    "bandit", "berti+perceptron", "bandit+fdp", "berti+perceptron+clip",
    "streamer+perceptron",
]


def _fuzz_spec(seed, schemes=None):
    rng = random.Random(seed)
    cores = rng.choice([1, 2, 4])
    return RunSpec(
        scheme=Scheme.parse(rng.choice(schemes or _FUZZ_SCHEMES)),
        mix=tuple(rng.choice(_FUZZ_WORKLOADS) for _ in range(cores)),
        channels=rng.choice([1, 2]),
        num_cores=cores,
        sim_instructions=rng.choice([800, 1_500, 2_000]),
    )


@pytest.mark.parametrize("seed", range(8))
def test_batch_matches_event_on_fuzzed_config(seed):
    spec = _fuzz_spec(seed)

    def build():
        return spec.config(), list(spec.mix)

    _assert_backends_identical(build, f"fuzz seed {seed} ({spec.scheme} "
                                      f"x{spec.cores} ch{spec.channels})")


@pytest.mark.parametrize("seed", range(100, 106))
def test_batch_matches_event_on_fuzzed_learned_config(seed):
    """Learned policies carry the most update-order-sensitive state in
    the simulator (bandit Q tables, perceptron weights, xorshift
    streams); fuzz them across both backends like any static scheme."""
    spec = _fuzz_spec(seed, schemes=_LEARNED_FUZZ_SCHEMES)

    def build():
        return spec.config(), list(spec.mix)

    result = _assert_backends_identical(
        build, f"learned fuzz seed {seed} ({spec.scheme} "
               f"x{spec.cores} ch{spec.channels})")
    # The policy must actually have run: its counters join the chain
    # group on every core.
    for core_id in range(spec.cores):
        chain = result["counters"][f"core{core_id}.chain"]
        assert chain["policy_epochs"] >= 0  # key present on both paths


def test_fuzz_specs_are_deterministic_and_diverse():
    """The fuzz points must stay stable run-to-run (same seeds -> same
    specs) and actually vary the knobs the golden matrix fixes."""
    a = [_fuzz_spec(seed) for seed in range(8)]
    b = [_fuzz_spec(seed) for seed in range(8)]
    assert a == b
    assert len({spec.cores for spec in a}) > 1
    assert len({spec.channels for spec in a}) > 1
    assert len({spec.scheme for spec in a}) > 1
    learned = [_fuzz_spec(seed, schemes=_LEARNED_FUZZ_SCHEMES)
               for seed in range(100, 106)]
    assert learned == [_fuzz_spec(seed, schemes=_LEARNED_FUZZ_SCHEMES)
                       for seed in range(100, 106)]
    assert {spec.scheme.learned for spec in learned} == \
        {"bandit", "perceptron"}
