"""Unit tests for CLIP's hardware structures (paper section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClipConfig
from repro.core import (ApcPhaseDetector, CriticalityFilter,
                        CriticalityPredictor, ShiftRegister, UtilityBuffer,
                        critical_signature, storage_overhead, storage_table)


class TestShiftRegister:
    def test_push_and_mask(self):
        register = ShiftRegister(4)
        for bit in [True, False, True, True]:
            register.push(bit)
        assert int(register) == 0b1011
        register.push(True)
        assert int(register) == 0b0111  # Oldest bit fell off.

    def test_clear(self):
        register = ShiftRegister(8)
        register.push(True)
        register.clear()
        assert int(register) == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ShiftRegister(0)

    @given(st.lists(st.booleans(), max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_value_always_in_range(self, bits):
        register = ShiftRegister(32)
        for bit in bits:
            register.push(bit)
        assert 0 <= int(register) < (1 << 32)


class TestCriticalSignature:
    def test_deterministic(self):
        a = critical_signature(0x400, 0x1234, 0xFF, 0x0F)
        b = critical_signature(0x400, 0x1234, 0xFF, 0x0F)
        assert a == b

    def test_within_width(self):
        for ip in range(0, 1 << 20, 997):
            sig = critical_signature(ip, ip * 3, ip, ip, width=13)
            assert 0 <= sig < (1 << 13)

    def test_branch_history_changes_signature(self):
        base = critical_signature(0x400, 0x1234, 0b0000, 0)
        flipped = critical_signature(0x400, 0x1234, 0b1111, 0)
        assert base != flipped

    def test_component_toggles(self):
        with_addr = critical_signature(0x400, 0x123456, 0, 0)
        without_addr = critical_signature(0x400, 0x999999 << 10, 0, 0,
                                          use_address=False)
        ip_only = critical_signature(0x400, 0, 0, 0, use_address=False,
                                     use_branch_history=False,
                                     use_criticality_history=False)
        assert ip_only == critical_signature(0x400, 0xFFF << 20, 0xF0F0,
                                             0xFFFF, use_address=False,
                                             use_branch_history=False,
                                             use_criticality_history=False)

    def test_same_region_lines_share_signature(self):
        """Generalisation: lines within one signature region must map to
        the same predictor entry (the prefetch-address problem)."""
        a = critical_signature(0x400, 0x1000, 0xF, 0x3)
        b = critical_signature(0x400, 0x10FF, 0xF, 0x3)
        assert a == b

    def test_distant_lines_differ(self):
        values = {critical_signature(0x400, region << 8, 0, 0)
                  for region in range(64)}
        assert len(values) > 32


class TestUtilityBuffer:
    def test_insert_and_match_consumes(self):
        buffer = UtilityBuffer(4)
        buffer.insert(0x10, trigger_ip=0x400)
        assert buffer.match(0x10) == 0x400
        assert buffer.match(0x10) is None  # Counted once.

    def test_capacity_eviction_fifo(self):
        buffer = UtilityBuffer(2)
        buffer.insert(1, 0xA)
        buffer.insert(2, 0xB)
        buffer.insert(3, 0xC)
        assert buffer.match(1) is None
        assert buffer.match(2) == 0xB
        assert buffer.match(3) == 0xC

    def test_reinsert_updates_ip(self):
        buffer = UtilityBuffer(4)
        buffer.insert(1, 0xA)
        buffer.insert(1, 0xB)
        assert buffer.match(1) == 0xB

    def test_len_and_clear(self):
        buffer = UtilityBuffer(8)
        for line in range(5):
            buffer.insert(line, 0x1)
        assert len(buffer) == 5
        buffer.clear()
        assert len(buffer) == 0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            UtilityBuffer(0)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 10)),
                    max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_capacity(self, pairs):
        buffer = UtilityBuffer(16)
        for line, ip in pairs:
            buffer.insert(line, ip)
            assert len(buffer) <= 16


class TestCriticalityFilter:
    def _filter(self, **kw) -> CriticalityFilter:
        return CriticalityFilter(sets=4, ways=2, **kw)

    def test_insert_on_critical(self):
        filt = self._filter()
        filt.record_critical(0x400)
        entry = filt.get(0x400)
        assert entry is not None and entry.crit_count == 1

    def test_exploration_starts_at_threshold(self):
        filt = self._filter()
        for _ in range(2):
            filt.record_critical(0x400)
        assert not filt.get(0x400).exploring
        filt.record_critical(0x400)
        assert filt.get(0x400).exploring

    def test_crit_count_saturates_at_two_bits(self):
        filt = self._filter()
        for _ in range(20):
            filt.record_critical(0x400)
        assert filt.get(0x400).crit_count == 3

    def test_lfu_eviction_by_crit_count(self):
        filt = CriticalityFilter(sets=1, ways=2)
        for _ in range(3):
            filt.record_critical(0x10)
        filt.record_critical(0x24)
        filt.record_critical(0x38)  # Evicts the weaker of the two.
        assert filt.get(0x10) is not None
        assert filt.evictions == 1

    def test_certification_requires_high_hit_rate(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        for _ in range(10):
            filt.note_issue(0x400)
            filt.note_hit(0x400)
        filt.end_window()
        assert filt.get(0x400).is_crit_accurate

    def test_low_hit_rate_blocks(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        for i in range(10):
            filt.note_issue(0x400)
            if i < 5:
                filt.note_hit(0x400)
        filt.end_window()
        entry = filt.get(0x400)
        assert not entry.is_crit_accurate
        assert not filt.allows_prefetch(0x400)

    def test_blocked_ip_reexplores(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        filt.note_issue(0x400)  # 0% hit rate.
        filt.end_window()
        assert not filt.get(0x400).is_crit_accurate
        for _ in range(CriticalityFilter.REEXPLORE_WINDOWS):
            filt.end_window()
        assert filt.get(0x400).exploring

    def test_window_halves_counters(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        for _ in range(8):
            filt.note_issue(0x400)
            filt.note_hit(0x400)
        filt.end_window()
        entry = filt.get(0x400)
        assert entry.hit_count == 4 and entry.issue_count == 4

    def test_exploration_probe_budget(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        for _ in range(CriticalityFilter.EXPLORATION_PROBES):
            assert filt.allows_prefetch(0x400)
            filt.note_issue(0x400)
        assert not filt.allows_prefetch(0x400)

    def test_counter_ratio_survives_saturation(self):
        filt = self._filter()
        for _ in range(3):
            filt.record_critical(0x400)
        for _ in range(500):
            filt.note_issue(0x400)
            # 50% hit rate throughout.
            if _ % 2 == 0:
                filt.note_hit(0x400)
        entry = filt.get(0x400)
        rate = entry.hit_rate()
        assert rate is not None and 0.3 < rate < 0.7

    def test_reset_clears_everything(self):
        filt = self._filter()
        filt.record_critical(0x400)
        filt.reset()
        assert len(filt) == 0


class TestCriticalityPredictor:
    def test_miss_returns_none(self):
        predictor = CriticalityPredictor(sets=4, ways=2)
        assert predictor.predict(123) is None

    def test_train_then_predict_critical(self):
        predictor = CriticalityPredictor(sets=4, ways=2)
        predictor.train(123, critical=True)
        assert predictor.predict(123) is True

    def test_counter_descends_to_noncritical(self):
        predictor = CriticalityPredictor(sets=4, ways=2)
        for _ in range(5):
            predictor.train(123, critical=False)
        assert predictor.predict(123) is False

    def test_counter_saturates(self):
        predictor = CriticalityPredictor(sets=4, ways=2, counter_bits=3)
        for _ in range(50):
            predictor.train(7, critical=True)
        entry = predictor._sets[7 % 4][(7 // 4) & 0x3F]
        assert entry.counter == 7

    def test_nru_victim_prefers_unreferenced(self):
        predictor = CriticalityPredictor(sets=1, ways=2)
        predictor.train(0, critical=True)
        predictor.train(1, critical=True)
        predictor.predict(1)           # Reference way holding tag 1.
        predictor.train(2, critical=True)  # Must evict one of them.
        assert len(predictor._sets[0]) == 2

    def test_reset(self):
        predictor = CriticalityPredictor(sets=4, ways=2)
        predictor.train(5, critical=True)
        predictor.reset()
        assert len(predictor) == 0

    @given(st.lists(st.tuples(st.integers(0, 5000), st.booleans()),
                    max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_capacity_invariant(self, events):
        predictor = CriticalityPredictor(sets=8, ways=2)
        for signature, critical in events:
            predictor.train(signature, critical)
        assert len(predictor) <= 16


class TestApcPhaseDetector:
    def test_stable_apc_no_phase_change(self):
        detector = ApcPhaseDetector(history_windows=4, threshold=0.15)
        for window in range(10):
            for _ in range(100):
                detector.note_access()
            assert not detector.end_window((window + 1) * 1000)

    def test_large_shift_detected_after_warmup(self):
        detector = ApcPhaseDetector(history_windows=4, threshold=0.15)
        for window in range(4):
            for _ in range(100):
                detector.note_access()
            detector.end_window((window + 1) * 1000)
        for _ in range(300):
            detector.note_access()
        assert detector.end_window(5000)
        assert detector.phase_changes == 1

    def test_small_shift_tolerated(self):
        detector = ApcPhaseDetector(history_windows=4, threshold=0.15)
        counts = [100, 101, 99, 100, 105, 108]
        for window, count in enumerate(counts):
            for _ in range(count):
                detector.note_access()
            assert not detector.end_window((window + 1) * 1000)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ApcPhaseDetector(history_windows=0)
        with pytest.raises(ValueError):
            ApcPhaseDetector(threshold=0)


class TestStorageOverhead:
    def test_matches_paper_total(self):
        """Table 2: 1.56 KB per core (decimal kilobytes)."""
        total_bytes = storage_overhead() * 1024
        assert total_bytes == pytest.approx(1564.125, abs=0.5)

    def test_row_values_match_table2(self):
        rows = {row.structure: row for row in storage_table()}
        assert rows["Criticality filter"].bytes == 336
        assert rows["Criticality predictor"].bytes == 640
        assert rows["ROB extension"].bytes == 64
        assert rows["Utility buffer"].bytes == 512

    def test_scaling_with_table_sizes(self):
        small = ClipConfig().scaled(0.5)
        big = ClipConfig().scaled(2.0)
        assert storage_overhead(small) < storage_overhead()
        assert storage_overhead(big) > storage_overhead()
