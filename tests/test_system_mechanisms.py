"""Focused integration tests for specific system mechanisms."""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MulticoreSystem, run_system, scaled_config
from repro.trace import homogeneous_mix


def _config(cores=2, channels=1, instructions=4_000, l1="none", l2="none",
            **flags):
    config = scaled_config(num_cores=cores, channels=channels,
                           sim_instructions=instructions)
    config.l1_prefetcher = dataclasses.replace(config.l1_prefetcher, name=l1)
    config.l2_prefetcher = dataclasses.replace(config.l2_prefetcher, name=l2)
    if flags.get("clip"):
        config.clip.enabled = True
    if flags.get("hermes"):
        config.related = dataclasses.replace(config.related, hermes=True)
    if flags.get("dspatch"):
        config.related = dataclasses.replace(config.related, dspatch=True)
    return config


class TestSliceLocalAddressing:
    @given(st.integers(min_value=0, max_value=1 << 44),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_slice_local_roundtrip(self, line, num_slices):
        """local * num_slices + slice must reconstruct the original line."""
        slice_id = line % num_slices
        local = line // num_slices
        assert local * num_slices + slice_id == line

    def test_llc_uses_full_set_range(self):
        system = MulticoreSystem(_config(cores=4),
                                 homogeneous_mix("619.lbm_s-2676B", 4))
        system.run()
        # Fills must land in many distinct sets of each slice, not 1/4th.
        for slice_cache in system.llc:
            occupied_sets = sum(1 for m in slice_cache._map if m)
            if slice_cache.occupancy > slice_cache.num_sets:
                assert occupied_sets > slice_cache.num_sets // 2


class TestCriticalityFlagPlumbing:
    def test_clip_prefetches_reach_dram_as_prefetch_class(self):
        config = _config(cores=2, instructions=6_000, l1="berti", clip=True)
        # Disable the criticality flag: CLIP survivors become plain
        # prefetch class at the DRAM.
        config.clip = dataclasses.replace(config.clip,
                                          criticality_conscious_noc_dram=False)
        result = run_system(config, homogeneous_mix("603.bwaves_s-1740B", 2))
        if result.prefetch.issued:
            assert result.dram.prefetch_reads >= 0

    def test_crit_flag_improves_or_preserves_latency(self):
        mix = homogeneous_mix("603.bwaves_s-1740B", 2)
        with_flag = _config(cores=2, instructions=6_000, l1="berti",
                            clip=True)
        result_flag = run_system(with_flag, mix)
        without = _config(cores=2, instructions=6_000, l1="berti",
                          clip=True)
        without.clip = dataclasses.replace(
            without.clip, criticality_conscious_noc_dram=False)
        result_plain = run_system(without, mix)
        # The paper credits priority with a small share (2.8% of 24%); it
        # must never be a large loss.
        assert result_flag.total_cycles < result_plain.total_cycles * 1.1


class TestHermesMechanism:
    def test_hermes_fills_llc_early(self):
        """Predicted off-chip loads launch DRAM reads that fill the LLC;
        hermes must not change instruction counts and should add DRAM
        traffic on mispredictions."""
        mix = homogeneous_mix("605.mcf_s-1536B", 2)
        plain = run_system(_config(cores=2, instructions=6_000, l1="berti"),
                           mix)
        hermes = run_system(_config(cores=2, instructions=6_000, l1="berti",
                                    hermes=True), mix)
        assert hermes.total_instructions == plain.total_instructions
        # Hermes does not reduce DRAM traffic (paper 5.3): reads with
        # Hermes >= without (speculative fetches add, never subtract).
        assert hermes.dram.reads >= plain.dram.reads * 0.95

    def test_hermes_no_duplicate_dram_reads_for_hits(self):
        config = _config(cores=2, instructions=5_000, l1="none",
                         hermes=True)
        system = MulticoreSystem(config,
                                 homogeneous_mix("603.bwaves_s-1740B", 2))
        system.run()
        # Every hermes launch is tracked and consumed; the pending map must
        # not grow without bound (entries are cleaned on completion).
        for node in system.nodes:
            assert len(node.hermes_pending) <= 257


class TestDspatchMechanism:
    def test_dspatch_modes_exercised(self):
        config = _config(cores=4, channels=1, instructions=8_000,
                         l1="berti", dspatch=True)
        system = MulticoreSystem(config,
                                 homogeneous_mix("603.bwaves_s-1740B", 4))
        system.run()
        total_modes = sum(node.dspatch.coverage_mode_uses
                          + node.dspatch.accuracy_mode_uses
                          for node in system.nodes)
        assert total_modes > 0


class TestThrottleScaling:
    def test_degree_scale_zero_stops_candidates(self):
        config = _config(cores=2, instructions=5_000, l1="stride")
        system = MulticoreSystem(config,
                                 homogeneous_mix("619.lbm_s-2676B", 2))
        for node in system.nodes:
            node.l1_pf.set_degree_scale(0.0)
        result = system.run()
        assert result.prefetch.issued == 0
